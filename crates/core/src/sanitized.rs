use dpod_fmatrix::{AxisBox, DenseMatrix, PrefixSum, Shape};
use dpod_partition::Partitioning;

/// How a [`SanitizedMatrix`] was structured, for introspection.
///
/// Query answering never consults this — the dense estimate plus its
/// prefix-sum table is the uniform interface — but tests validate the
/// `Boxes` variant and the visualizer renders it.
#[derive(Debug, Clone)]
pub enum PartitionSummary {
    /// One released value per matrix entry with no grouping structure
    /// (IDENTITY, Privelet). Storing a per-cell box list for million-cell
    /// matrices would be pure overhead.
    PerEntry,
    /// Disjoint partitions, each released with one noisy total.
    Boxes {
        /// The partition geometry.
        partitioning: Partitioning,
        /// The noisy total published for each partition (same order).
        noisy_counts: Vec<f64>,
    },
}

/// The DP-sanitized output of a mechanism.
///
/// Per the paper's publication model (§2.2), the released object is the set
/// of partition boundaries with their noisy counts; queries are answered
/// under an intra-partition uniformity assumption. This struct stores that
/// assumption *pre-applied*: `matrix[c] = noisy_count(P) / |P|` for the
/// partition `P ∋ c`, plus a prefix-sum table so any range query costs
/// `O(2^d)`.
#[derive(Debug, Clone)]
pub struct SanitizedMatrix {
    mechanism: String,
    epsilon: f64,
    matrix: DenseMatrix<f64>,
    prefix: PrefixSum<f64>,
    summary: PartitionSummary,
}

impl SanitizedMatrix {
    /// Wraps a per-entry estimate matrix (for mechanisms without partition
    /// structure).
    pub fn from_entries(mechanism: &str, epsilon: f64, matrix: DenseMatrix<f64>) -> Self {
        let prefix = PrefixSum::from_f64(&matrix);
        SanitizedMatrix {
            mechanism: mechanism.to_string(),
            epsilon,
            matrix,
            prefix,
            summary: PartitionSummary::PerEntry,
        }
    }

    /// Spreads each partition's noisy count uniformly over its cells
    /// (the paper's uniformity assumption) and builds the query table.
    ///
    /// # Panics
    /// Debug-asserts that `noisy_counts` matches the partition count and
    /// that no partition is empty.
    pub fn from_partitions(
        mechanism: &str,
        epsilon: f64,
        domain: Shape,
        partitioning: Partitioning,
        noisy_counts: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(partitioning.len(), noisy_counts.len());
        let mut matrix = DenseMatrix::<f64>::zeros(domain);
        for (b, &count) in partitioning.boxes().iter().zip(&noisy_counts) {
            let vol = b.volume();
            debug_assert!(vol > 0, "empty partition released");
            matrix.fill_box(b, count / vol as f64);
        }
        let prefix = PrefixSum::from_f64(&matrix);
        SanitizedMatrix {
            mechanism: mechanism.to_string(),
            epsilon,
            matrix,
            prefix,
            summary: PartitionSummary::Boxes {
                partitioning,
                noisy_counts,
            },
        }
    }

    /// Name of the producing mechanism.
    pub fn mechanism(&self) -> &str {
        &self.mechanism
    }

    /// Total privacy budget the release consumed.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The dense per-entry estimate (uniformity already applied).
    pub fn matrix(&self) -> &DenseMatrix<f64> {
        &self.matrix
    }

    /// The partition structure of the release.
    pub fn summary(&self) -> &PartitionSummary {
        &self.summary
    }

    /// Number of released partitions (= number of entries for
    /// [`PartitionSummary::PerEntry`]).
    pub fn num_partitions(&self) -> usize {
        match &self.summary {
            PartitionSummary::PerEntry => self.matrix.len(),
            PartitionSummary::Boxes { partitioning, .. } => partitioning.len(),
        }
    }

    /// Estimated count inside the half-open range `q` — the private answer
    /// to the paper's range queries (Definition 3), `O(2^d)`.
    pub fn range_sum(&self, q: &AxisBox) -> f64 {
        self.prefix.box_sum(q)
    }

    /// Estimated count of a single entry.
    ///
    /// # Errors
    /// Propagates coordinate validation.
    pub fn entry(&self, coords: &[usize]) -> dpod_fmatrix::Result<f64> {
        self.matrix.get(coords)
    }

    /// Estimated total count of the matrix.
    pub fn total(&self) -> f64 {
        self.range_sum(&AxisBox::full(self.matrix.shape()))
    }

    /// DP post-processing: clamp negative per-entry estimates to zero.
    ///
    /// The paper publishes raw noisy counts (negative answers included);
    /// this opt-in variant exists for the ablation benches and for
    /// downstream users that need physical counts.
    pub fn non_negative(&self) -> SanitizedMatrix {
        let clamped = self.matrix.map(|v| v.max(0.0));
        SanitizedMatrix {
            mechanism: format!("{}+nn", self.mechanism),
            epsilon: self.epsilon,
            prefix: PrefixSum::from_f64(&clamped),
            matrix: clamped,
            summary: self.summary.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpod_partition::UniformGrid;

    fn shape(dims: &[usize]) -> Shape {
        Shape::new(dims.to_vec()).unwrap()
    }

    #[test]
    fn from_partitions_spreads_uniformly() {
        let s = shape(&[4, 4]);
        let grid = UniformGrid::isotropic(&s, 2);
        let p = grid.to_partitioning();
        // Counts 8, 0, -4, 16 over the four 2x2 blocks.
        let out = SanitizedMatrix::from_partitions("test", 0.5, s, p, vec![8.0, 0.0, -4.0, 16.0]);
        assert_eq!(out.entry(&[0, 0]).unwrap(), 2.0);
        assert_eq!(out.entry(&[0, 2]).unwrap(), 0.0);
        assert_eq!(out.entry(&[2, 1]).unwrap(), -1.0);
        assert_eq!(out.entry(&[3, 3]).unwrap(), 4.0);
        assert_eq!(out.num_partitions(), 4);
        assert!((out.total() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn range_sum_mixes_partition_fractions() {
        let s = shape(&[4]);
        let p = Partitioning::new_validated(
            s.clone(),
            vec![
                AxisBox::new(vec![0], vec![2]).unwrap(),
                AxisBox::new(vec![2], vec![4]).unwrap(),
            ],
        )
        .unwrap();
        let out = SanitizedMatrix::from_partitions("t", 1.0, s, p, vec![10.0, 2.0]);
        // Query [1, 3): half of partition 1 + half of partition 2.
        let q = AxisBox::new(vec![1], vec![3]).unwrap();
        assert!((out.range_sum(&q) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn per_entry_summary_counts_cells() {
        let m = DenseMatrix::<f64>::from_vec(shape(&[2, 3]), vec![1.0; 6]).unwrap();
        let out = SanitizedMatrix::from_entries("id", 0.1, m);
        assert_eq!(out.num_partitions(), 6);
        assert!(matches!(out.summary(), PartitionSummary::PerEntry));
    }

    #[test]
    fn non_negative_clamps_only_negatives() {
        let m = DenseMatrix::<f64>::from_vec(shape(&[3]), vec![-2.0, 0.5, 3.0]).unwrap();
        let out = SanitizedMatrix::from_entries("id", 0.1, m).non_negative();
        assert_eq!(out.entry(&[0]).unwrap(), 0.0);
        assert_eq!(out.entry(&[1]).unwrap(), 0.5);
        assert_eq!(out.entry(&[2]).unwrap(), 3.0);
        assert!(out.mechanism().ends_with("+nn"));
    }
}
