//! Shared engine for the grid-based mechanisms (EUG, EBP, MKM, UNIFORM):
//! given a granularity, build the equi-width grid, sanitize each cell's
//! total with the Laplace mechanism, and package a [`SanitizedMatrix`].

use crate::{MechanismError, SanitizedMatrix};
use dpod_dp::{laplace::LaplaceMechanism, BudgetAccountant, Epsilon};
use dpod_fmatrix::{AxisBox, DenseMatrix, PrefixSum};
use dpod_partition::UniformGrid;
use rand::RngCore;

/// Result of the shared noisy-total preamble (Alg. 1 lines 1–2).
pub(crate) struct NoisyTotal {
    /// The sanitized total count `N̂` (unclamped; formulas clamp).
    pub n_hat: f64,
    /// Budget remaining for data perturbation.
    pub accountant: BudgetAccountant,
}

/// Spends `eps0_fraction` of the budget on a noisy total count.
pub(crate) fn noisy_total(
    input: &DenseMatrix<u64>,
    epsilon: Epsilon,
    eps0_fraction: f64,
    rng: &mut dyn RngCore,
) -> Result<NoisyTotal, MechanismError> {
    if !(eps0_fraction > 0.0 && eps0_fraction < 1.0) {
        return Err(MechanismError::Invalid(format!(
            "eps0_fraction must be in (0,1), got {eps0_fraction}"
        )));
    }
    let mut accountant = BudgetAccountant::new(epsilon);
    let e0 = accountant.spend(epsilon.value() * eps0_fraction, "noisy total")?;
    let lap = LaplaceMechanism::counting();
    let n_hat = lap.randomize(input.total(), e0, rng);
    Ok(NoisyTotal { n_hat, accountant })
}

/// Sanitizes every cell of `grid` with the remaining budget and packages
/// the release. `mechanism_name` labels the output.
pub(crate) fn sanitize_grid(
    input: &DenseMatrix<u64>,
    grid: &UniformGrid,
    mut accountant: BudgetAccountant,
    total_epsilon: Epsilon,
    mechanism_name: &str,
    rng: &mut dyn RngCore,
) -> Result<SanitizedMatrix, MechanismError> {
    // Disjoint partitions ⇒ parallel composition: each cell's count query
    // consumes the same (remaining) budget once, not once per cell.
    let e_data = accountant.spend_rest("grid cell counts")?;
    let lap = LaplaceMechanism::counting();
    let prefix = PrefixSum::from_counts(input);
    let boxes: Vec<AxisBox> = grid.iter_boxes().collect();
    let noisy: Vec<f64> = boxes
        .iter()
        .map(|b| lap.randomize(prefix.box_count(b) as f64, e_data, rng))
        .collect();
    let partitioning = grid.to_partitioning();
    Ok(SanitizedMatrix::from_partitions(
        mechanism_name,
        total_epsilon.value(),
        input.shape().clone(),
        partitioning,
        noisy,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpod_fmatrix::Shape;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn matrix(dims: &[usize], fill: u64) -> DenseMatrix<u64> {
        let s = Shape::new(dims.to_vec()).unwrap();
        let data = vec![fill; s.size()];
        DenseMatrix::from_vec(s, data).unwrap()
    }

    #[test]
    fn noisy_total_spends_fraction() {
        let m = matrix(&[8, 8], 10);
        let mut rng = dpod_dp::seeded_rng(1);
        let nt = noisy_total(&m, eps(1.0), 0.01, &mut rng).unwrap();
        assert!((nt.accountant.spent() - 0.01).abs() < 1e-12);
        // With ε₀ = 0.01 the noise scale is 100; N = 640.
        assert!((nt.n_hat - 640.0).abs() < 2_000.0);
    }

    #[test]
    fn noisy_total_rejects_bad_fraction() {
        let m = matrix(&[4], 1);
        let mut rng = dpod_dp::seeded_rng(2);
        assert!(noisy_total(&m, eps(1.0), 0.0, &mut rng).is_err());
        assert!(noisy_total(&m, eps(1.0), 1.0, &mut rng).is_err());
    }

    #[test]
    fn sanitize_grid_releases_every_cell() {
        let m = matrix(&[6, 6], 100);
        let grid = UniformGrid::isotropic(m.shape(), 3);
        let mut rng = dpod_dp::seeded_rng(3);
        let acc = BudgetAccountant::new(eps(2.0));
        let out = sanitize_grid(&m, &grid, acc, eps(2.0), "test", &mut rng).unwrap();
        assert_eq!(out.num_partitions(), 9);
        // Each 2×2 block holds 400; with ε=2 noise is tiny relative to that.
        let err = (out.total() - 3_600.0).abs();
        assert!(err < 100.0, "total error {err}");
    }

    #[test]
    fn grid_output_close_to_truth_at_high_budget() {
        let m = matrix(&[10, 10], 50);
        let grid = UniformGrid::isotropic(m.shape(), 5);
        let mut rng = dpod_dp::seeded_rng(4);
        let acc = BudgetAccountant::new(eps(50.0));
        let out = sanitize_grid(&m, &grid, acc, eps(50.0), "hi", &mut rng).unwrap();
        for c in m.shape().iter_coords() {
            let est = out.entry(&c).unwrap();
            assert!((est - 50.0).abs() < 5.0, "entry {c:?}: {est}");
        }
    }
}
