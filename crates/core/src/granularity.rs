//! Grid-granularity formulas (Eqs. 8, 9, 13, 19 of the paper plus the MKM
//! rule), shared by the grid mechanisms and the DAF fanout computation.
//!
//! All formulas take the *sanitized* total count `n_hat` (clamped to ≥ 1 —
//! Laplace noise can drive it negative, which the paper does not address;
//! see DESIGN.md §3.1) and return a real-valued granularity that callers
//! round and clamp to their domain.

/// The paper's default `c₀ = 10/√2`, which makes the 2-D EUG formula
/// `m = √(Nε/10)` — the familiar Uniform Grid rule of Qardaji et al.
pub const DEFAULT_C0: f64 = 10.0 / std::f64::consts::SQRT_2;

/// Clamps a noisy total for use inside a granularity formula.
#[inline]
pub fn clamp_total(n_hat: f64) -> f64 {
    n_hat.max(1.0)
}

/// EUG granularity (§3.1).
///
/// * `d == 1` and `d == 2`: Eq. (9), `m = √(N̂ε/(√2 c₀))` (the 1-D case is
///   not covered by the paper; the 2-D rule is the natural restriction).
/// * `d > 2`, known query ratio `r`: Eq. (8).
/// * `d > 2`, unknown ratio: Eq. (13) — Eq. (8) integrated over
///   `r ~ U(0,1]`.
pub fn eug_m(d: usize, n_hat: f64, epsilon: f64, c0: f64, query_ratio: Option<f64>) -> f64 {
    debug_assert!(d >= 1 && epsilon > 0.0 && c0 > 0.0);
    let n = clamp_total(n_hat);
    let base = n * epsilon / (std::f64::consts::SQRT_2 * c0);
    if d <= 2 {
        return base.sqrt();
    }
    let df = d as f64;
    let exponent = 2.0 / (3.0 * df - 2.0);
    match query_ratio {
        Some(r) => {
            debug_assert!(r > 0.0 && r <= 1.0, "query ratio must be in (0,1]");
            let r_term = r.powf(1.0 / df - 0.5);
            (2.0 * (df - 1.0) / df * r_term * base).powf(exponent)
        }
        None => {
            // Eq. (10): α with the r-term integrated out…
            let alpha = (2.0 * (df - 1.0) / df * base).powf(exponent);
            // …Eq. (12)-(13): times the integration factor.
            alpha * (df * (3.0 * df - 2.0)) / (3.0 * df * df - 3.0 * df + 2.0)
        }
    }
}

/// EBP granularity (Eq. 19): `m = (N̂ε/√2)^(2/(3d))`.
///
/// Derived by balancing the entropy of the injected noise against the
/// information loss of coarsening (§3.2). Also the DAF fanout rule, where
/// `d` is the number of *not yet split* dimensions.
pub fn ebp_m(d: usize, n_hat: f64, epsilon: f64) -> f64 {
    debug_assert!(d >= 1 && epsilon > 0.0);
    let n = clamp_total(n_hat);
    (n * epsilon / std::f64::consts::SQRT_2).powf(2.0 / (3.0 * d as f64))
}

/// MKM granularity.
///
/// The paper cites Lei (2011) without restating the rule; we implement the
/// asymptotically optimal histogram bin count
/// `m = (N̂ ε² / ln N̂)^(1/(d+2))`, which has both properties the paper
/// attributes to MKM: it accounts for dimensionality, and it violates
/// ε-scale exchangeability (ε appears squared, not as `Nε`). DESIGN.md §3.2
/// discusses the interpretation.
pub fn mkm_m(d: usize, n_hat: f64, epsilon: f64) -> f64 {
    debug_assert!(d >= 1 && epsilon > 0.0);
    let n = clamp_total(n_hat).max(2.0); // ln N must stay positive
    (n * epsilon * epsilon / n.ln()).powf(1.0 / (d as f64 + 2.0))
}

/// Rounds a real granularity to an integer cell count in `[1, dim_len]`.
#[inline]
pub fn round_granularity(m: f64, dim_len: usize) -> usize {
    if !m.is_finite() {
        return 1;
    }
    (m.round() as i64).clamp(1, dim_len as i64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq13_matches_eq9_in_2d() {
        // At d = 2 the general Eq. (13) degenerates to Eq. (9); the
        // implementation special-cases d ≤ 2, so verify the formulas agree
        // by computing Eq. (13) manually at d = 2.
        let (n, e, c0) = (1_000_000.0, 0.1, DEFAULT_C0);
        let df = 2.0f64;
        let base = n * e / (std::f64::consts::SQRT_2 * c0);
        let alpha = (2.0 * (df - 1.0) / df * base).powf(2.0 / (3.0 * df - 2.0));
        let eq13 = alpha * (df * (3.0 * df - 2.0)) / (3.0 * df * df - 3.0 * df + 2.0);
        let eq9 = eug_m(2, n, e, c0, None);
        assert!((eq13 - eq9).abs() < 1e-9, "{eq13} vs {eq9}");
    }

    #[test]
    fn eug_2d_matches_qardaji_rule() {
        // c0 = 10/√2 ⇒ m = √(Nε/10).
        let m = eug_m(2, 1_000_000.0, 0.1, DEFAULT_C0, None);
        assert!((m - 100.0).abs() < 1e-9, "m = {m}");
    }

    #[test]
    fn eug_known_ratio_matches_eq8() {
        // r = 1 makes the r-term 1; Eq. (8) = α without integration factor.
        let d = 4;
        let m_r1 = eug_m(d, 1e6, 0.1, DEFAULT_C0, Some(1.0));
        let df = d as f64;
        let base = 1e6 * 0.1 / (std::f64::consts::SQRT_2 * DEFAULT_C0);
        let expected = (2.0 * (df - 1.0) / df * base).powf(2.0 / (3.0 * df - 2.0));
        assert!((m_r1 - expected).abs() < 1e-9);
        // Smaller queries (smaller r) want finer grids (r^(1/d − 1/2) grows
        // as r shrinks for d > 2).
        let m_small = eug_m(d, 1e6, 0.1, DEFAULT_C0, Some(0.01));
        assert!(m_small > m_r1);
    }

    #[test]
    fn ebp_matches_hand_computation() {
        // m = (Nε/√2)^(2/(3d)); N=1e6, ε=0.1, d=2 ⇒ (70710.68)^(1/3) ≈ 41.4.
        let m = ebp_m(2, 1e6, 0.1);
        assert!((m - (1e6 * 0.1 / std::f64::consts::SQRT_2).powf(1.0 / 3.0)).abs() < 1e-9);
        assert!((m - 41.4).abs() < 0.1, "m = {m}");
    }

    #[test]
    fn granularity_grows_with_n_and_eps() {
        for f in [
            eug_m(3, 1e5, 0.1, DEFAULT_C0, None),
            ebp_m(3, 1e5, 0.1),
            mkm_m(3, 1e5, 0.1),
        ]
        .iter()
        .zip([
            eug_m(3, 1e6, 0.5, DEFAULT_C0, None),
            ebp_m(3, 1e6, 0.5),
            mkm_m(3, 1e6, 0.5),
        ]) {
            let (small, large) = (f.0, f.1);
            assert!(large > *small, "{large} !> {small}");
        }
    }

    #[test]
    fn granularity_shrinks_with_dimension() {
        for d in 2..6 {
            assert!(ebp_m(d + 1, 1e6, 0.1) < ebp_m(d, 1e6, 0.1));
            assert!(mkm_m(d + 1, 1e6, 0.1) < mkm_m(d, 1e6, 0.1));
        }
    }

    #[test]
    fn mkm_violates_epsilon_scale_exchangeability() {
        // ε-scale exchangeability: (N, ε) vs (cN, ε/c) should be equivalent.
        // EBP/EUG honour it (they depend on Nε); MKM must not.
        let c = 10.0;
        let ebp_a = ebp_m(2, 1e6, 0.1);
        let ebp_b = ebp_m(2, 1e7, 0.01);
        assert!((ebp_a - ebp_b).abs() < 1e-9);
        let mkm_a = mkm_m(2, 1e6, 0.1);
        let mkm_b = mkm_m(2, 1e6 * c, 0.1 / c);
        assert!(
            (mkm_a - mkm_b).abs() > 0.1,
            "MKM should break exchangeability: {mkm_a} vs {mkm_b}"
        );
    }

    #[test]
    fn negative_noisy_totals_are_survivable() {
        for f in [
            eug_m(2, -50.0, 0.1, DEFAULT_C0, None),
            ebp_m(4, -50.0, 0.1),
            mkm_m(3, -50.0, 0.1),
        ] {
            assert!(f.is_finite() && f > 0.0);
        }
    }

    #[test]
    fn rounding_clamps() {
        assert_eq!(round_granularity(0.2, 100), 1);
        assert_eq!(round_granularity(41.4, 100), 41);
        assert_eq!(round_granularity(41.6, 100), 42);
        assert_eq!(round_granularity(1e9, 100), 100);
        assert_eq!(round_granularity(f64::NAN, 100), 1);
    }
}
