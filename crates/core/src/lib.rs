//! # dpod-core
//!
//! The mechanisms of *"Differentially-Private Publication of
//! Origin-Destination Matrices with Intermediate Stops"* (EDBT 2022),
//! implemented over the `dpod-fmatrix` / `dpod-dp` / `dpod-partition`
//! substrates:
//!
//! | Mechanism | Paper | Type |
//! |-----------|-------|------|
//! | [`Identity`](baselines::Identity) | \[7\], Table 2 | baseline |
//! | [`Uniform`](baselines::Uniform) | \[8\], Table 2 | baseline |
//! | [`Mkm`](baselines::Mkm) | \[11\], §5 | partially data-dependent |
//! | [`Eug`](grid::Eug) | §3.1, Alg. 1 | partially data-dependent |
//! | [`Ebp`](grid::Ebp) | §3.2 | partially data-dependent |
//! | [`DafEntropy`](daf::DafEntropy) | §4.2, Alg. 2 | data-dependent |
//! | [`DafHomogeneity`](daf::DafHomogeneity) | §4.3, Alg. 3 | data-dependent |
//! | [`Privelet`](baselines::Privelet) | \[18\], §5 | extension baseline |
//! | [`QuadTree`](baselines::QuadTree) | \[4\], §5 | extension baseline |
//! | [`AdaptiveGrid`](grid::AdaptiveGrid) | \[15\], §5 | extension baseline |
//!
//! Every mechanism consumes a raw count matrix and a total privacy budget
//! and produces a [`SanitizedMatrix`]: a dense per-entry estimate (with the
//! paper's intra-partition uniformity assumption already applied) plus the
//! partition structure for introspection. Range queries over the output are
//! `O(2^d)` via an embedded prefix-sum table.
//!
//! ```
//! use dpod_core::{grid::Ebp, Mechanism};
//! use dpod_dp::Epsilon;
//! use dpod_fmatrix::{AxisBox, DenseMatrix, Shape};
//!
//! let mut m = DenseMatrix::<u64>::zeros(Shape::new(vec![32, 32]).unwrap());
//! m.add_at(&[3, 4], 500).unwrap();
//! let mut rng = dpod_dp::seeded_rng(1);
//! let out = Ebp::default()
//!     .sanitize(&m, Epsilon::new(1.0).unwrap(), &mut rng)
//!     .unwrap();
//! let q = AxisBox::new(vec![0, 0], vec![8, 8]).unwrap();
//! let est = out.range_sum(&q);
//! assert!(est.is_finite());
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod baselines;
pub mod daf;
pub mod granularity;
pub mod grid;
mod grid_engine;
mod mechanism;
pub mod release;
mod sanitized;

pub use mechanism::{Mechanism, MechanismError};
pub use release::{PublishedRelease, ReleaseBody};
pub use sanitized::{PartitionSummary, SanitizedMatrix};

/// A boxed mechanism that can be shared across experiment worker threads
/// (every mechanism in this crate is stateless at sanitize time).
pub type DynMechanism = Box<dyn Mechanism + Send + Sync>;

/// The six techniques of the paper's evaluation (§6.1, Table 2 minus
/// UNIFORM), with default parameters, in the paper's presentation order.
pub fn paper_suite() -> Vec<DynMechanism> {
    vec![
        Box::new(baselines::Identity),
        Box::new(grid::Eug::default()),
        Box::new(grid::Ebp::default()),
        Box::new(baselines::Mkm::default()),
        Box::new(daf::DafEntropy::default()),
        Box::new(daf::DafHomogeneity::default()),
    ]
}

/// Every mechanism in the crate (paper suite + UNIFORM + the three
/// extension baselines).
pub fn all_mechanisms() -> Vec<DynMechanism> {
    let mut v = paper_suite();
    v.push(Box::new(baselines::Uniform));
    v.push(Box::new(baselines::Privelet));
    v.push(Box::new(baselines::QuadTree::default()));
    v.push(Box::new(grid::AdaptiveGrid::default()));
    v
}
