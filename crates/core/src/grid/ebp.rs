use crate::granularity::{ebp_m, round_granularity};
use crate::grid_engine::{noisy_total, sanitize_grid};
use crate::{Mechanism, MechanismError, SanitizedMatrix};
use dpod_dp::Epsilon;
use dpod_fmatrix::DenseMatrix;
use dpod_partition::UniformGrid;
use rand::RngCore;

/// Entropy-Based Partitioning (§3.2).
///
/// Replaces EUG's error-balancing formula (which needs the empirical
/// constant `c₀`) with an information-theoretic one: the granularity
/// `m = (N̂ε/√2)^(2/(3d))` (Eq. 19) equalizes the entropy of the injected
/// Laplace noise with the information lost by coarsening the matrix.
/// The pipeline is otherwise Algorithm 1 with line 4 swapped.
#[derive(Debug, Clone, PartialEq)]
pub struct Ebp {
    /// Fraction of the budget spent on the noisy total (ε₀).
    pub eps0_fraction: f64,
}

impl Default for Ebp {
    fn default() -> Self {
        Ebp {
            eps0_fraction: 0.01,
        }
    }
}

impl Ebp {
    /// The granularity this configuration chooses for a sanitized total
    /// `n_hat` at data budget `epsilon` in `d` dimensions.
    pub fn granularity(&self, d: usize, n_hat: f64, epsilon: f64) -> f64 {
        ebp_m(d, n_hat, epsilon)
    }
}

impl Mechanism for Ebp {
    fn name(&self) -> &'static str {
        "EBP"
    }

    fn sanitize(
        &self,
        input: &DenseMatrix<u64>,
        epsilon: Epsilon,
        rng: &mut dyn RngCore,
    ) -> Result<SanitizedMatrix, MechanismError> {
        let nt = noisy_total(input, epsilon, self.eps0_fraction, rng)?;
        let d = input.ndim();
        let m = self.granularity(d, nt.n_hat, nt.accountant.remaining());
        let cells: Vec<usize> = input
            .shape()
            .dims()
            .iter()
            .map(|&len| round_granularity(m, len))
            .collect();
        let grid = UniformGrid::new(input.shape(), &cells).map_err(MechanismError::Invalid)?;
        sanitize_grid(input, &grid, nt.accountant, epsilon, self.name(), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PartitionSummary;
    use dpod_fmatrix::Shape;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn uniform_matrix(dims: &[usize], fill: u64) -> DenseMatrix<u64> {
        let s = Shape::new(dims.to_vec()).unwrap();
        DenseMatrix::from_vec(s.clone(), vec![fill; s.size()]).unwrap()
    }

    #[test]
    fn ebp_is_coarser_than_eug_in_2d() {
        // With the paper's parameters (N=1e6, ε=0.1): EUG m≈100, EBP m≈41.
        let ebp = Ebp::default().granularity(2, 1e6, 0.1);
        let eug = crate::grid::Eug::default().granularity(2, 1e6, 0.1);
        assert!(ebp < eug, "EBP {ebp} should be coarser than EUG {eug}");
        assert!((ebp - 41.4).abs() < 0.5);
    }

    #[test]
    fn produces_valid_partitioning() {
        let m = uniform_matrix(&[30, 30], 10);
        let out = Ebp::default()
            .sanitize(&m, eps(0.5), &mut dpod_dp::seeded_rng(1))
            .unwrap();
        match out.summary() {
            PartitionSummary::Boxes { partitioning, .. } => {
                assert!(partitioning.validate().is_ok())
            }
            other => panic!("expected boxes, got {other:?}"),
        }
    }

    #[test]
    fn six_dimensional_input() {
        let m = uniform_matrix(&[4, 4, 4, 4, 4, 4], 2);
        let out = Ebp::default()
            .sanitize(&m, eps(0.3), &mut dpod_dp::seeded_rng(2))
            .unwrap();
        assert_eq!(out.matrix().ndim(), 6);
        // Total estimate should be in the right ballpark (N = 8192).
        assert!((out.total() - 8192.0).abs() < 8192.0);
    }

    #[test]
    fn accurate_on_uniform_data() {
        // Uniform data has zero uniformity error; with a generous budget the
        // estimate must track the truth closely.
        let m = uniform_matrix(&[32, 32], 100);
        let out = Ebp::default()
            .sanitize(&m, eps(5.0), &mut dpod_dp::seeded_rng(3))
            .unwrap();
        let rel = (out.total() - m.total()).abs() / m.total();
        assert!(rel < 0.02, "relative total error {rel}");
    }

    #[test]
    fn deterministic_per_seed() {
        let m = uniform_matrix(&[16, 16], 7);
        let a = Ebp::default()
            .sanitize(&m, eps(0.2), &mut dpod_dp::seeded_rng(8))
            .unwrap();
        let b = Ebp::default()
            .sanitize(&m, eps(0.2), &mut dpod_dp::seeded_rng(8))
            .unwrap();
        assert_eq!(a.matrix().as_slice(), b.matrix().as_slice());
    }
}
