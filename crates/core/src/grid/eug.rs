use crate::granularity::{eug_m, round_granularity, DEFAULT_C0};
use crate::grid_engine::{noisy_total, sanitize_grid};
use crate::{Mechanism, MechanismError, SanitizedMatrix};
use dpod_dp::Epsilon;
use dpod_fmatrix::DenseMatrix;
use dpod_partition::UniformGrid;
use rand::RngCore;

/// Extended Uniform Grid (Algorithm 1, §3.1).
///
/// Generalizes the Uniform Grid of Qardaji et al. to any dimensionality:
/// sanitize the total count with ε₀, plug it into the closed-form optimal
/// granularity (Eq. 9 for 2-D, Eq. 8/13 for d > 2), partition into `m^d`
/// equal cells and Laplace-noise each cell with the remaining budget.
///
/// ```
/// use dpod_core::{grid::Eug, Mechanism};
/// # use dpod_dp::Epsilon;
/// # use dpod_fmatrix::{DenseMatrix, Shape};
/// let input = DenseMatrix::<u64>::zeros(Shape::new(vec![16, 16]).unwrap());
/// let out = Eug::default()
///     .sanitize(&input, Epsilon::new(0.5).unwrap(), &mut dpod_dp::seeded_rng(0))
///     .unwrap();
/// assert_eq!(out.mechanism(), "EUG");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Eug {
    /// Fraction of the budget spent on the noisy total (the paper's ε₀;
    /// DESIGN.md §3.3 — default 1/100).
    pub eps0_fraction: f64,
    /// The uniformity constant `c₀` (the paper sets `10/√2`).
    pub c0: f64,
    /// Known query-selectivity ratio `r ∈ (0,1]`; `None` integrates over
    /// all ratios (Eq. 13).
    pub query_ratio: Option<f64>,
}

impl Default for Eug {
    fn default() -> Self {
        Eug {
            eps0_fraction: 0.01,
            c0: DEFAULT_C0,
            query_ratio: None,
        }
    }
}

impl Eug {
    /// EUG tuned for a known query ratio (uses Eq. 8 instead of Eq. 13).
    pub fn with_query_ratio(r: f64) -> Self {
        Eug {
            query_ratio: Some(r),
            ..Eug::default()
        }
    }

    /// The granularity this configuration would choose for a sanitized
    /// total `n_hat` at data budget `epsilon` in `d` dimensions (exposed
    /// for the ablation benches).
    pub fn granularity(&self, d: usize, n_hat: f64, epsilon: f64) -> f64 {
        eug_m(d, n_hat, epsilon, self.c0, self.query_ratio)
    }
}

impl Mechanism for Eug {
    fn name(&self) -> &'static str {
        "EUG"
    }

    fn sanitize(
        &self,
        input: &DenseMatrix<u64>,
        epsilon: Epsilon,
        rng: &mut dyn RngCore,
    ) -> Result<SanitizedMatrix, MechanismError> {
        if !(self.c0 > 0.0 && self.c0.is_finite()) {
            return Err(MechanismError::Invalid(format!(
                "c0 must be > 0, got {}",
                self.c0
            )));
        }
        if let Some(r) = self.query_ratio {
            if !(r > 0.0 && r <= 1.0) {
                return Err(MechanismError::Invalid(format!(
                    "query_ratio must be in (0,1], got {r}"
                )));
            }
        }
        let nt = noisy_total(input, epsilon, self.eps0_fraction, rng)?;
        let d = input.ndim();
        let m = self.granularity(d, nt.n_hat, nt.accountant.remaining());
        let cells: Vec<usize> = input
            .shape()
            .dims()
            .iter()
            .map(|&len| round_granularity(m, len))
            .collect();
        let grid = UniformGrid::new(input.shape(), &cells).map_err(MechanismError::Invalid)?;
        sanitize_grid(input, &grid, nt.accountant, epsilon, self.name(), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PartitionSummary;
    use dpod_fmatrix::Shape;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn uniform_matrix(dims: &[usize], fill: u64) -> DenseMatrix<u64> {
        let s = Shape::new(dims.to_vec()).unwrap();
        DenseMatrix::from_vec(s.clone(), vec![fill; s.size()]).unwrap()
    }

    #[test]
    fn produces_valid_partitioning() {
        let m = uniform_matrix(&[20, 20], 25);
        let out = Eug::default()
            .sanitize(&m, eps(1.0), &mut dpod_dp::seeded_rng(1))
            .unwrap();
        match out.summary() {
            PartitionSummary::Boxes { partitioning, .. } => {
                assert!(partitioning.validate().is_ok());
            }
            other => panic!("expected boxes, got {other:?}"),
        }
    }

    #[test]
    fn grid_granularity_tracks_budget() {
        // More budget ⇒ finer grid ⇒ more partitions. (Low density keeps
        // both grids away from the per-dimension clamp.)
        let m = uniform_matrix(&[64, 64], 2);
        let lo = Eug::default()
            .sanitize(&m, eps(0.05), &mut dpod_dp::seeded_rng(2))
            .unwrap();
        let hi = Eug::default()
            .sanitize(&m, eps(2.0), &mut dpod_dp::seeded_rng(2))
            .unwrap();
        assert!(hi.num_partitions() > lo.num_partitions());
    }

    #[test]
    fn works_in_four_dimensions() {
        let m = uniform_matrix(&[8, 8, 8, 8], 3);
        let out = Eug::default()
            .sanitize(&m, eps(0.5), &mut dpod_dp::seeded_rng(3))
            .unwrap();
        assert_eq!(out.matrix().ndim(), 4);
        assert!(out.total().is_finite());
    }

    #[test]
    fn rejects_bad_configuration() {
        let m = uniform_matrix(&[4, 4], 1);
        let mut rng = dpod_dp::seeded_rng(4);
        let bad_c0 = Eug {
            c0: 0.0,
            ..Eug::default()
        };
        assert!(bad_c0.sanitize(&m, eps(1.0), &mut rng).is_err());
        let bad_r = Eug::with_query_ratio(1.5);
        assert!(bad_r.sanitize(&m, eps(1.0), &mut rng).is_err());
        let bad_frac = Eug {
            eps0_fraction: 1.0,
            ..Eug::default()
        };
        assert!(bad_frac.sanitize(&m, eps(1.0), &mut rng).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let m = uniform_matrix(&[16, 16], 10);
        let a = Eug::default()
            .sanitize(&m, eps(0.3), &mut dpod_dp::seeded_rng(9))
            .unwrap();
        let b = Eug::default()
            .sanitize(&m, eps(0.3), &mut dpod_dp::seeded_rng(9))
            .unwrap();
        assert_eq!(a.matrix().as_slice(), b.matrix().as_slice());
    }

    #[test]
    fn empty_matrix_is_handled() {
        let m = uniform_matrix(&[10, 10], 0);
        let out = Eug::default()
            .sanitize(&m, eps(0.5), &mut dpod_dp::seeded_rng(5))
            .unwrap();
        // Noisy total near zero clamps to the coarsest grid; output exists.
        assert!(out.total().is_finite());
    }
}
