//! The paper's non-adaptive ("partially data-dependent") grid mechanisms:
//! EUG (§3.1) and EBP (§3.2). Both sanitize the total count, derive an
//! isotropic granularity `m`, build an `m^d` equi-width grid and release
//! Laplace-noised cell totals.

mod ag;
mod ebp;
mod eug;

pub use ag::AdaptiveGrid;
pub use ebp::Ebp;
pub use eug::Eug;
