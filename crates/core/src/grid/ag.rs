use crate::granularity::{eug_m, round_granularity, DEFAULT_C0};
use crate::grid_engine::noisy_total;
use crate::{Mechanism, MechanismError, SanitizedMatrix};
use dpod_dp::{laplace::LaplaceMechanism, Epsilon};
use dpod_fmatrix::{AxisBox, DenseMatrix, PrefixSum};
use dpod_partition::{Partitioning, UniformGrid};
use rand::RngCore;

/// Adaptive Grid (extension; the "AG" of Qardaji et al. \[15\], which the
/// paper's §5 groups with UG as partially data-dependent).
///
/// Two levels: a deliberately coarse level-1 grid is sanitized with a
/// fraction `alpha` of the data budget; each level-1 cell is then
/// re-partitioned by a level-2 grid sized from *its own* noisy count and
/// sanitized with the remaining budget. Dense cells get fine sub-grids,
/// empty cells stay whole — a grid-shaped precursor of the paper's DAF
/// idea.
///
/// Generalization to `d` dimensions: both levels use the EUG granularity
/// formula (Eq. 9/13); level 1 halves it (Qardaji's `m₁ = m_UG/2` rule)
/// and level 2 uses `c₀/2` (their `c₂ = c/2`). The published release is
/// the level-2 partition set (per-cell budgets compose in parallel across
/// disjoint cells and sequentially across the two levels).
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveGrid {
    /// Fraction of the budget spent on the noisy total (ε₀).
    pub eps0_fraction: f64,
    /// Fraction `α` of the post-ε₀ budget given to level 1.
    pub alpha: f64,
    /// The EUG uniformity constant for level 1 (level 2 uses half of it).
    pub c0: f64,
}

impl Default for AdaptiveGrid {
    fn default() -> Self {
        AdaptiveGrid {
            eps0_fraction: 0.01,
            alpha: 0.5,
            c0: DEFAULT_C0,
        }
    }
}

impl Mechanism for AdaptiveGrid {
    fn name(&self) -> &'static str {
        "AG"
    }

    fn sanitize(
        &self,
        input: &DenseMatrix<u64>,
        epsilon: Epsilon,
        rng: &mut dyn RngCore,
    ) -> Result<SanitizedMatrix, MechanismError> {
        if !(self.alpha > 0.0 && self.alpha < 1.0) {
            return Err(MechanismError::Invalid(format!(
                "alpha must be in (0,1), got {}",
                self.alpha
            )));
        }
        if !(self.c0 > 0.0 && self.c0.is_finite()) {
            return Err(MechanismError::Invalid(format!(
                "c0 must be positive, got {}",
                self.c0
            )));
        }
        let d = input.ndim();
        let mut nt = noisy_total(input, epsilon, self.eps0_fraction, rng)?;
        let eps_rest = nt.accountant.remaining();
        let eps1 = nt
            .accountant
            .spend(eps_rest * self.alpha, "level-1 cell counts")?;
        let eps2 = nt.accountant.spend_rest("level-2 cell counts")?;

        // Level 1: half the EUG granularity at the level-1 budget.
        let m1 = (eug_m(d, nt.n_hat, eps1.value(), self.c0, None) / 2.0).max(1.0);
        let cells1: Vec<usize> = input
            .shape()
            .dims()
            .iter()
            .map(|&len| round_granularity(m1, len))
            .collect();
        let level1 = UniformGrid::new(input.shape(), &cells1).map_err(MechanismError::Invalid)?;

        let lap = LaplaceMechanism::counting();
        let prefix = PrefixSum::from_counts(input);

        // Level 2: per level-1 cell, size a sub-grid from the noisy count
        // and release its sub-cell counts.
        let mut boxes: Vec<AxisBox> = Vec::new();
        let mut counts: Vec<f64> = Vec::new();
        for cell in level1.iter_boxes() {
            let n1 = lap.randomize(prefix.box_count(&cell) as f64, eps1, rng);
            let m2 = eug_m(d, n1, eps2.value(), self.c0 / 2.0, None);
            let sub_cells: Vec<usize> = (0..d)
                .map(|dim| round_granularity(m2, cell.extent(dim)))
                .collect();
            for sub in subgrid_boxes(&cell, &sub_cells) {
                let n2 = lap.randomize(prefix.box_count(&sub) as f64, eps2, rng);
                boxes.push(sub);
                counts.push(n2);
            }
        }
        let partitioning = Partitioning::new_unchecked(input.shape().clone(), boxes);
        Ok(SanitizedMatrix::from_partitions(
            self.name(),
            epsilon.value(),
            input.shape().clone(),
            partitioning,
            counts,
        ))
    }
}

/// Near-equal sub-boxes of `cell` with `cells[dim]` pieces per dimension.
fn subgrid_boxes(cell: &AxisBox, cells: &[usize]) -> Vec<AxisBox> {
    let d = cell.ndim();
    // Boundaries per dimension inside the cell.
    let bounds: Vec<Vec<usize>> = (0..d)
        .map(|dim| {
            let len = cell.extent(dim);
            let m = cells[dim].clamp(1, len.max(1));
            let base = len / m;
            let extra = len % m;
            let mut b = Vec::with_capacity(m + 1);
            let mut pos = cell.lo()[dim];
            b.push(pos);
            for i in 0..m {
                pos += base + usize::from(i < extra);
                b.push(pos);
            }
            b
        })
        .collect();
    let mut out = Vec::new();
    let mut idx = vec![0usize; d];
    loop {
        let lo: Vec<usize> = (0..d).map(|dim| bounds[dim][idx[dim]]).collect();
        let hi: Vec<usize> = (0..d).map(|dim| bounds[dim][idx[dim] + 1]).collect();
        out.push(AxisBox::new(lo, hi).expect("ordered sub-boundaries"));
        // Odometer.
        let mut dim = d;
        loop {
            if dim == 0 {
                return out;
            }
            dim -= 1;
            idx[dim] += 1;
            if idx[dim] < bounds[dim].len() - 1 {
                break;
            }
            idx[dim] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpod_fmatrix::Shape;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn subgrid_tiles_cell() {
        let cell = AxisBox::new(vec![2, 4], vec![9, 10]).unwrap();
        let subs = subgrid_boxes(&cell, &[3, 2]);
        assert_eq!(subs.len(), 6);
        let vol: usize = subs.iter().map(AxisBox::volume).sum();
        assert_eq!(vol, cell.volume());
        for (i, a) in subs.iter().enumerate() {
            assert!(cell.contains_box(a));
            for b in subs.iter().skip(i + 1) {
                assert_eq!(a.overlap_volume(b), 0);
            }
        }
    }

    #[test]
    fn produces_valid_partitioning() {
        let s = Shape::new(vec![40, 40]).unwrap();
        let mut m = DenseMatrix::<u64>::zeros(s);
        for x in 0..10 {
            for y in 0..10 {
                m.set(&[x, y], 400).unwrap();
            }
        }
        let out = AdaptiveGrid::default()
            .sanitize(&m, eps(0.5), &mut dpod_dp::seeded_rng(1))
            .unwrap();
        let crate::PartitionSummary::Boxes { partitioning, .. } = out.summary() else {
            panic!("expected boxes");
        };
        assert!(partitioning.validate().is_ok());
    }

    #[test]
    fn adapts_subgrid_to_density() {
        // The dense corner should end up with more (smaller) partitions
        // than the empty remainder.
        let s = Shape::new(vec![60, 60]).unwrap();
        let mut m = DenseMatrix::<u64>::zeros(s);
        for x in 0..12 {
            for y in 0..12 {
                m.set(&[x, y], 1_000).unwrap();
            }
        }
        let out = AdaptiveGrid::default()
            .sanitize(&m, eps(1.0), &mut dpod_dp::seeded_rng(2))
            .unwrap();
        let crate::PartitionSummary::Boxes { partitioning, .. } = out.summary() else {
            panic!("expected boxes");
        };
        let (mut vol_in, mut n_in, mut vol_out, mut n_out) = (0usize, 0usize, 0usize, 0usize);
        for b in partitioning.boxes() {
            if b.lo()[0] < 12 && b.lo()[1] < 12 {
                vol_in += b.volume();
                n_in += 1;
            } else {
                vol_out += b.volume();
                n_out += 1;
            }
        }
        assert!(
            (vol_in as f64 / n_in as f64) < (vol_out as f64 / n_out as f64),
            "dense region should be partitioned finer"
        );
    }

    #[test]
    fn rejects_bad_alpha() {
        let m = DenseMatrix::<u64>::zeros(Shape::new(vec![8, 8]).unwrap());
        let bad = AdaptiveGrid {
            alpha: 1.0,
            ..AdaptiveGrid::default()
        };
        assert!(bad
            .sanitize(&m, eps(1.0), &mut dpod_dp::seeded_rng(3))
            .is_err());
    }

    #[test]
    fn works_in_four_dimensions() {
        let s = Shape::new(vec![6, 6, 6, 6]).unwrap();
        let m = DenseMatrix::from_vec(s.clone(), vec![5u64; s.size()]).unwrap();
        let out = AdaptiveGrid::default()
            .sanitize(&m, eps(0.5), &mut dpod_dp::seeded_rng(4))
            .unwrap();
        assert!(out.total().is_finite());
        let crate::PartitionSummary::Boxes { partitioning, .. } = out.summary() else {
            panic!("expected boxes");
        };
        assert!(partitioning.validate().is_ok());
    }

    #[test]
    fn deterministic_per_seed() {
        let s = Shape::new(vec![20, 20]).unwrap();
        let mut m = DenseMatrix::<u64>::zeros(s);
        m.add_at(&[5, 5], 3_000).unwrap();
        let a = AdaptiveGrid::default()
            .sanitize(&m, eps(0.4), &mut dpod_dp::seeded_rng(5))
            .unwrap();
        let b = AdaptiveGrid::default()
            .sanitize(&m, eps(0.4), &mut dpod_dp::seeded_rng(5))
            .unwrap();
        assert_eq!(a.matrix().as_slice(), b.matrix().as_slice());
    }
}
