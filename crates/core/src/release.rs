//! The publishable release artifact.
//!
//! Figure 1 of the paper: the trusted curator sanitizes the frequency
//! matrix and *publishes* it; untrusted analysts query the published
//! object. [`PublishedRelease`] is that object — the partition boundaries
//! with their noisy counts (§2.2), serializable with serde so curators can
//! ship it as JSON/CBOR/… and analysts can rebuild a queryable
//! [`SanitizedMatrix`] on their side.
//!
//! Releasing this artifact is safe by DP post-processing: it contains only
//! the sanitized outputs, never the raw counts.

use crate::{MechanismError, PartitionSummary, SanitizedMatrix};
use dpod_fmatrix::codec::{FrameReader, FrameWriter, RELEASE_MAGIC, RELEASE_VERSION};
use dpod_fmatrix::{AxisBox, DenseMatrix, Shape};
use dpod_partition::Partitioning;
use serde::{Deserialize, Serialize};

/// Body discriminant in the `DPRL` binary frame.
const BODY_PER_ENTRY: u8 = 0;
/// Body discriminant in the `DPRL` binary frame.
const BODY_PARTITIONS: u8 = 1;

/// A self-contained, serializable DP release of a frequency matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PublishedRelease {
    /// Name of the producing mechanism.
    pub mechanism: String,
    /// Total privacy budget consumed.
    pub epsilon: f64,
    /// Domain cardinalities `F₁ … F_d`.
    pub domain: Vec<usize>,
    /// The released content.
    pub body: ReleaseBody,
}

/// The two publication shapes (mirrors [`PartitionSummary`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReleaseBody {
    /// One value per matrix entry, row-major (IDENTITY, Privelet).
    PerEntry {
        /// The noisy per-entry values.
        values: Vec<f64>,
    },
    /// Disjoint partitions with one noisy total each.
    Partitions {
        /// `(lo, hi)` corner pairs, half-open.
        boxes: Vec<(Vec<usize>, Vec<usize>)>,
        /// The noisy totals (same order as `boxes`).
        counts: Vec<f64>,
    },
}

impl PublishedRelease {
    /// Extracts the publishable artifact from a sanitization result.
    pub fn from_sanitized(s: &SanitizedMatrix) -> Self {
        let body = match s.summary() {
            PartitionSummary::PerEntry => ReleaseBody::PerEntry {
                values: s.matrix().as_slice().to_vec(),
            },
            PartitionSummary::Boxes {
                partitioning,
                noisy_counts,
            } => ReleaseBody::Partitions {
                boxes: partitioning
                    .boxes()
                    .iter()
                    .map(|b| (b.lo().to_vec(), b.hi().to_vec()))
                    .collect(),
                counts: noisy_counts.clone(),
            },
        };
        PublishedRelease {
            mechanism: s.mechanism().to_string(),
            epsilon: s.epsilon(),
            domain: s.matrix().shape().dims().to_vec(),
            body,
        }
    }

    /// Rebuilds a queryable [`SanitizedMatrix`] on the analyst side.
    ///
    /// # Errors
    /// [`MechanismError::Invalid`] when the artifact is internally
    /// inconsistent (wrong value count, malformed boxes, or — for the
    /// partition form — boxes that are not a disjoint cover of the
    /// domain). Validation runs on every load because the artifact may
    /// come from an untrusted channel.
    pub fn into_sanitized(self) -> Result<SanitizedMatrix, MechanismError> {
        let shape = Shape::new(self.domain.clone()).map_err(MechanismError::Fm)?;
        match self.body {
            ReleaseBody::PerEntry { values } => {
                let matrix = DenseMatrix::from_vec(shape, values).map_err(MechanismError::Fm)?;
                if matrix.as_slice().iter().any(|v| !v.is_finite()) {
                    return Err(MechanismError::Invalid(
                        "per-entry release contains non-finite values".into(),
                    ));
                }
                Ok(SanitizedMatrix::from_entries(
                    &self.mechanism,
                    self.epsilon,
                    matrix,
                ))
            }
            ReleaseBody::Partitions { boxes, counts } => {
                if boxes.len() != counts.len() {
                    return Err(MechanismError::Invalid(format!(
                        "{} boxes but {} counts",
                        boxes.len(),
                        counts.len()
                    )));
                }
                if counts.iter().any(|v| !v.is_finite()) {
                    return Err(MechanismError::Invalid(
                        "release contains non-finite counts".into(),
                    ));
                }
                let boxes: Vec<AxisBox> = boxes
                    .into_iter()
                    .map(|(lo, hi)| AxisBox::new(lo, hi).map_err(MechanismError::Fm))
                    .collect::<Result<_, _>>()?;
                let partitioning = Partitioning::new_validated(shape.clone(), boxes)
                    .map_err(|e| MechanismError::Invalid(format!("invalid partitioning: {e}")))?;
                Ok(SanitizedMatrix::from_partitions(
                    &self.mechanism,
                    self.epsilon,
                    shape,
                    partitioning,
                    counts,
                ))
            }
        }
    }

    /// Serializes to the compact `DPRL` binary frame.
    ///
    /// JSON inflates a large release roughly 3×; serving catalogs store
    /// and ship this frame instead. Layout (all little-endian, after the
    /// `"DPRL"` magic and version byte):
    ///
    /// ```text
    /// mechanism  u16 len + UTF-8 bytes
    /// epsilon    f64 bits
    /// domain     u64 count + count × u64
    /// body_kind  u8 (0 = per-entry, 1 = partitions)
    /// PerEntry:   values  u64 count + count × f64 bits
    /// Partitions: nboxes  u64
    ///             boxes   nboxes × (u64 count + count × u64) twice (lo, hi)
    ///             counts  u64 count + count × f64 bits
    /// ```
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload_guess = 32 + self.domain.len() * 8 + self.len() * 8;
        let mut w = FrameWriter::with_capacity(RELEASE_MAGIC, RELEASE_VERSION, payload_guess);
        w.put_str(&self.mechanism);
        w.put_f64(self.epsilon);
        w.put_usize_slice(&self.domain);
        match &self.body {
            ReleaseBody::PerEntry { values } => {
                w.put_u8(BODY_PER_ENTRY);
                w.put_f64_slice(values);
            }
            ReleaseBody::Partitions { boxes, counts } => {
                w.put_u8(BODY_PARTITIONS);
                w.put_u64(boxes.len() as u64);
                for (lo, hi) in boxes {
                    w.put_usize_slice(lo);
                    w.put_usize_slice(hi);
                }
                w.put_f64_slice(counts);
            }
        }
        w.finish().to_vec()
    }

    /// Parses a `DPRL` binary frame.
    ///
    /// Framing errors are caught here; semantic validation (disjoint
    /// cover, finite counts, …) still happens in [`Self::into_sanitized`],
    /// exactly as for a release parsed from JSON.
    ///
    /// # Errors
    /// [`MechanismError::Invalid`] describing the first framing violation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, MechanismError> {
        let frame =
            |e: dpod_fmatrix::FmError| MechanismError::Invalid(format!("bad DPRL frame: {e}"));
        let mut r = FrameReader::new(bytes, RELEASE_MAGIC, RELEASE_VERSION).map_err(frame)?;
        let mechanism = r.get_str("mechanism").map_err(frame)?;
        let epsilon = r.get_f64("epsilon").map_err(frame)?;
        let domain = r.get_usize_vec("domain").map_err(frame)?;
        let body = match r.get_u8("body kind").map_err(frame)? {
            BODY_PER_ENTRY => ReleaseBody::PerEntry {
                values: r.get_f64_vec("values").map_err(frame)?,
            },
            BODY_PARTITIONS => {
                let nboxes = r.get_u64("box count").map_err(frame)? as usize;
                // Guard against adversarial counts before allocating.
                if nboxes.saturating_mul(2 * 8) > bytes.len() {
                    return Err(MechanismError::Invalid(format!(
                        "DPRL frame claims {nboxes} boxes but holds only {} bytes",
                        bytes.len()
                    )));
                }
                let mut boxes = Vec::with_capacity(nboxes);
                for i in 0..nboxes {
                    let lo = r.get_usize_vec("box lo").map_err(frame)?;
                    let hi = r.get_usize_vec("box hi").map_err(frame)?;
                    if lo.len() != domain.len() || hi.len() != domain.len() {
                        return Err(MechanismError::Invalid(format!(
                            "box {i} has {}–{} coords for a {}-d domain",
                            lo.len(),
                            hi.len(),
                            domain.len()
                        )));
                    }
                    boxes.push((lo, hi));
                }
                ReleaseBody::Partitions {
                    boxes,
                    counts: r.get_f64_vec("counts").map_err(frame)?,
                }
            }
            other => {
                return Err(MechanismError::Invalid(format!(
                    "unknown DPRL body kind {other}"
                )))
            }
        };
        r.finish().map_err(frame)?;
        Ok(PublishedRelease {
            mechanism,
            epsilon,
            domain,
            body,
        })
    }

    /// Number of released values.
    pub fn len(&self) -> usize {
        match &self.body {
            ReleaseBody::PerEntry { values } => values.len(),
            ReleaseBody::Partitions { counts, .. } => counts.len(),
        }
    }

    /// `true` when nothing was released (malformed artifact).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{baselines::Identity, grid::Ebp, Mechanism};
    use dpod_dp::Epsilon;

    fn skewed_input() -> DenseMatrix<u64> {
        let s = Shape::new(vec![12, 12]).unwrap();
        let mut m = DenseMatrix::<u64>::zeros(s);
        m.add_at(&[2, 3], 5_000).unwrap();
        m
    }

    #[test]
    fn partition_release_round_trips() {
        let input = skewed_input();
        let eps = Epsilon::new(0.5).unwrap();
        let out = Ebp::default()
            .sanitize(&input, eps, &mut dpod_dp::seeded_rng(1))
            .unwrap();
        let artifact = PublishedRelease::from_sanitized(&out);
        let rebuilt = artifact.clone().into_sanitized().unwrap();
        assert_eq!(rebuilt.mechanism(), out.mechanism());
        assert_eq!(rebuilt.matrix().as_slice(), out.matrix().as_slice());
        // Queries answer identically after the round trip.
        let q = AxisBox::new(vec![0, 0], vec![6, 6]).unwrap();
        assert_eq!(rebuilt.range_sum(&q), out.range_sum(&q));
    }

    #[test]
    fn per_entry_release_round_trips() {
        let input = skewed_input();
        let eps = Epsilon::new(0.5).unwrap();
        let out = Identity
            .sanitize(&input, eps, &mut dpod_dp::seeded_rng(2))
            .unwrap();
        let artifact = PublishedRelease::from_sanitized(&out);
        assert_eq!(artifact.len(), 144);
        let rebuilt = artifact.into_sanitized().unwrap();
        assert_eq!(rebuilt.matrix().as_slice(), out.matrix().as_slice());
    }

    #[test]
    fn malformed_artifacts_are_rejected() {
        let input = skewed_input();
        let eps = Epsilon::new(0.5).unwrap();
        let out = Ebp::default()
            .sanitize(&input, eps, &mut dpod_dp::seeded_rng(3))
            .unwrap();
        let good = PublishedRelease::from_sanitized(&out);

        // Count/box mismatch.
        let mut bad = good.clone();
        if let ReleaseBody::Partitions { counts, .. } = &mut bad.body {
            counts.pop();
        }
        assert!(bad.into_sanitized().is_err());

        // Overlapping boxes (tampered channel).
        let mut bad = good.clone();
        if let ReleaseBody::Partitions { boxes, .. } = &mut bad.body {
            boxes[0] = boxes[1].clone();
        }
        assert!(bad.into_sanitized().is_err());

        // Non-finite counts.
        let mut bad = good.clone();
        if let ReleaseBody::Partitions { counts, .. } = &mut bad.body {
            counts[0] = f64::NAN;
        }
        assert!(bad.into_sanitized().is_err());

        // Wrong domain.
        let mut bad = good;
        bad.domain = vec![5, 5];
        assert!(bad.into_sanitized().is_err());
    }

    #[test]
    fn binary_frame_round_trips_both_bodies() {
        let input = skewed_input();
        let eps = Epsilon::new(0.5).unwrap();
        for artifact in [
            PublishedRelease::from_sanitized(
                &Ebp::default()
                    .sanitize(&input, eps, &mut dpod_dp::seeded_rng(11))
                    .unwrap(),
            ),
            PublishedRelease::from_sanitized(
                &Identity
                    .sanitize(&input, eps, &mut dpod_dp::seeded_rng(12))
                    .unwrap(),
            ),
        ] {
            let bytes = artifact.to_bytes();
            let back = PublishedRelease::from_bytes(&bytes).unwrap();
            assert_eq!(back, artifact);
        }
    }

    #[test]
    fn binary_frame_rejects_corruption() {
        let input = skewed_input();
        let eps = Epsilon::new(0.5).unwrap();
        let out = Ebp::default()
            .sanitize(&input, eps, &mut dpod_dp::seeded_rng(13))
            .unwrap();
        let bytes = PublishedRelease::from_sanitized(&out).to_bytes();

        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(PublishedRelease::from_bytes(&bad).is_err());

        let mut bad = bytes.clone();
        bad[4] = RELEASE_VERSION + 1;
        assert!(PublishedRelease::from_bytes(&bad).is_err());

        assert!(PublishedRelease::from_bytes(&bytes[..bytes.len() - 4]).is_err());

        let mut extended = bytes.clone();
        extended.extend_from_slice(&[0u8; 3]);
        assert!(PublishedRelease::from_bytes(&extended).is_err());
    }

    #[test]
    fn binary_frame_is_denser_than_json() {
        let input = skewed_input();
        let eps = Epsilon::new(0.5).unwrap();
        let out = Identity
            .sanitize(&input, eps, &mut dpod_dp::seeded_rng(14))
            .unwrap();
        let artifact = PublishedRelease::from_sanitized(&out);
        let json = serde_json::to_string(&artifact).unwrap();
        assert!(
            artifact.to_bytes().len() * 2 < json.len(),
            "binary {} vs json {}",
            artifact.to_bytes().len(),
            json.len()
        );
    }

    #[test]
    fn artifact_never_contains_raw_counts() {
        // The artifact of a partition mechanism holds exactly the noisy
        // values already exposed by the sanitized matrix — nothing else.
        let input = skewed_input();
        let eps = Epsilon::new(0.1).unwrap();
        let out = Ebp::default()
            .sanitize(&input, eps, &mut dpod_dp::seeded_rng(4))
            .unwrap();
        let artifact = PublishedRelease::from_sanitized(&out);
        if let ReleaseBody::Partitions { counts, .. } = &artifact.body {
            // No released count equals the (integral) true totals exactly —
            // Laplace noise is continuous.
            assert!(counts.iter().all(|c| c.fract() != 0.0));
        } else {
            panic!("expected partition release");
        }
    }
}
