use serde::{Deserialize, Serialize};

/// When to prune a DAF node into a leaf (§4.2: "stop conditions can be
/// selected based on application-specific details; the most prominent …
/// is to stop when the sanitized count is below a certain threshold").
///
/// Stopping is evaluated on the *sanitized* count, so the decision itself
/// leaks nothing beyond what the count release already paid for.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StopPolicy {
    /// Never prune; split all the way to depth `d` (ablation reference).
    Never,
    /// Prune when the sanitized count falls below a fixed threshold.
    CountBelow(f64),
    /// Prune when the sanitized count is within `factor` noise standard
    /// deviations of zero at the remaining budget — i.e. when
    /// `n̂ < factor·√2/ε_remaining`, so further splits would publish noise.
    NoiseDominated {
        /// Multiplier on the remaining-budget noise std.
        factor: f64,
    },
}

impl Default for StopPolicy {
    fn default() -> Self {
        StopPolicy::NoiseDominated { factor: 2.0 }
    }
}

impl StopPolicy {
    /// Decides whether to prune, given the node's sanitized count and the
    /// budget still unspent along this path.
    pub fn should_stop(&self, ncount: f64, eps_remaining: f64) -> bool {
        match *self {
            StopPolicy::Never => false,
            StopPolicy::CountBelow(threshold) => ncount < threshold,
            StopPolicy::NoiseDominated { factor } => {
                debug_assert!(eps_remaining > 0.0);
                ncount < factor * std::f64::consts::SQRT_2 / eps_remaining
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_never_stops() {
        assert!(!StopPolicy::Never.should_stop(-1e9, 0.001));
    }

    #[test]
    fn count_below_is_a_plain_threshold() {
        let p = StopPolicy::CountBelow(10.0);
        assert!(p.should_stop(9.9, 1.0));
        assert!(!p.should_stop(10.0, 1.0));
        assert!(p.should_stop(-5.0, 1.0), "negative noisy counts stop");
    }

    #[test]
    fn noise_dominated_scales_with_budget() {
        let p = StopPolicy::NoiseDominated { factor: 2.0 };
        // Threshold = 2√2/ε: at ε=0.1 that is ≈ 28.3.
        assert!(p.should_stop(28.0, 0.1));
        assert!(!p.should_stop(29.0, 0.1));
        // More remaining budget ⇒ lower threshold ⇒ split deeper.
        assert!(!p.should_stop(28.0, 1.0));
    }

    #[test]
    fn default_is_noise_dominated() {
        assert!(matches!(
            StopPolicy::default(),
            StopPolicy::NoiseDominated { .. }
        ));
    }
}
