//! The shared DAF recursion (Algorithms 2 and 3 differ only in how a node
//! chooses its cut points and whether part of the level budget is diverted
//! to that choice; everything else — budget flow, fanout rule, stop
//! handling, leaf publication — lives here).

use crate::daf::{budget::level_budgets, StopPolicy, ROOT_BUDGET_FRACTION};
use crate::granularity::{ebp_m, round_granularity};
use crate::{MechanismError, SanitizedMatrix};
use dpod_dp::laplace::sample_laplace;
use dpod_dp::Epsilon;
use dpod_fmatrix::{AxisBox, DenseMatrix, PrefixSum};
use dpod_partition::{tree::TreeNode, Partitioning};
use rand::RngCore;

/// Bookkeeping attached to every DAF tree node; the integration tests
/// assert the budget-telescoping invariant from it.
#[derive(Debug, Clone, PartialEq)]
pub struct DafPayload {
    /// Exact count of the node's box (never published).
    pub count: u64,
    /// The sanitized count. For published leaves this is the released
    /// value; for internal nodes it only steered fanout/stop decisions.
    pub ncount: f64,
    /// The ε whose Laplace noise is in `ncount` (for pruned leaves: the
    /// top-up budget, not the level budget). Determines `ncount`'s
    /// variance `2/ε²` for the consistency post-processing.
    pub eps_count: f64,
    /// Budget spent at this node (count sanitization + any partitioning
    /// budget + the leaf top-up when pruned).
    pub eps_spent: f64,
    /// Cumulative budget spent along the root→this-node path.
    pub acc_after: f64,
    /// Whether this node's `ncount` is part of the published release.
    pub published: bool,
}

/// How a DAF variant picks the interior cut points for a node.
pub(crate) trait SplitPlanner {
    /// Fraction of each level budget diverted to partitioning
    /// (ε_prt = q·ε_level; 0 for DAF-Entropy).
    fn partition_budget_fraction(&self) -> f64;

    /// Chooses `fanout − 1` strictly increasing interior cuts for `bounds`
    /// along `dim`. `eps_prt` is the partitioning budget for this node
    /// (0 ⇒ the planner must be deterministic and data-independent).
    #[allow(clippy::too_many_arguments)] // mirrors Alg. 3's parameter list
    fn choose_cuts(
        &self,
        input: &DenseMatrix<u64>,
        prefix: &PrefixSum<i128>,
        bounds: &AxisBox,
        dim: usize,
        fanout: usize,
        eps_prt: f64,
        rng: &mut dyn RngCore,
    ) -> Vec<usize>;
}

/// Equal-width interior boundaries for splitting `[lo, hi)` into `fanout`
/// near-equal pieces (the DAF-Entropy rule, and the candidate-segment
/// skeleton for DAF-Homogeneity).
pub(crate) fn equal_cuts(lo: usize, hi: usize, fanout: usize) -> Vec<usize> {
    debug_assert!(fanout >= 1 && hi - lo >= fanout);
    let len = hi - lo;
    let base = len / fanout;
    let extra = len % fanout;
    let mut cuts = Vec::with_capacity(fanout - 1);
    let mut pos = lo;
    for i in 0..fanout - 1 {
        pos += base + usize::from(i < extra);
        cuts.push(pos);
    }
    cuts
}

/// One full DAF sanitization run.
pub(crate) struct DafRun<'a, P: SplitPlanner> {
    input: &'a DenseMatrix<u64>,
    prefix: PrefixSum<i128>,
    planner: &'a P,
    stop: StopPolicy,
    eps_tot: f64,
    d: usize,
    /// ε_1..ε_d from Eq. (32); filled in after the root fixes m₀.
    level_eps: Vec<f64>,
}

impl<'a, P: SplitPlanner> DafRun<'a, P> {
    pub(crate) fn execute(
        input: &'a DenseMatrix<u64>,
        planner: &'a P,
        stop: StopPolicy,
        epsilon: Epsilon,
        mechanism_name: &str,
        rng: &mut dyn RngCore,
    ) -> Result<(SanitizedMatrix, TreeNode<DafPayload>), MechanismError> {
        let d = input.ndim();
        let mut run = DafRun {
            input,
            prefix: PrefixSum::from_counts(input),
            planner,
            stop,
            eps_tot: epsilon.value(),
            d,
            level_eps: Vec::new(),
        };
        let tree = run.run_root(rng)?;
        debug_assert!(tree.check_split_invariant().is_ok());
        let sanitized = sanitized_from_tree(mechanism_name, run.eps_tot, input.shape(), &tree);
        Ok((sanitized, tree))
    }

    /// Processes the root (depth 0): fixes m₀, derives the per-level
    /// budgets, then recurses. The root never prunes (Alg. 2 places the
    /// stop check in the non-root branch).
    fn run_root(&mut self, rng: &mut dyn RngCore) -> Result<TreeNode<DafPayload>, MechanismError> {
        let bounds = AxisBox::full(self.input.shape());
        let count = self.prefix.box_count(&bounds);
        let eps0 = self.eps_tot * ROOT_BUDGET_FRACTION;
        let q = self.planner.partition_budget_fraction();
        let (eps_prt, eps_data) = split_level_budget(eps0, q);
        let ncount = count as f64 + sample_laplace(rng, 1.0 / eps_data);
        let acc = eps0;
        let remaining = self.eps_tot - acc;

        // Root fanout m₀ (Alg. 2 line 11): EBP rule over all d dimensions.
        let m0_real = ebp_m(self.d, ncount.max(1.0), remaining);
        self.level_eps = level_budgets(remaining, m0_real, self.d);

        let mut root = TreeNode::leaf(
            bounds.clone(),
            0,
            DafPayload {
                count,
                ncount,
                eps_count: eps_data,
                eps_spent: eps0,
                acc_after: acc,
                published: false,
            },
        );
        let fanout = round_granularity(m0_real, bounds.extent(0));
        root.children = self.split_and_recurse(&bounds, 0, fanout, eps_prt, acc, rng)?;
        Ok(root)
    }

    /// Splits `bounds` along `dim` into `fanout` children (via the planner)
    /// and recurses into each.
    fn split_and_recurse(
        &mut self,
        bounds: &AxisBox,
        dim: usize,
        fanout: usize,
        eps_prt: f64,
        acc: f64,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<TreeNode<DafPayload>>, MechanismError> {
        let cuts = if fanout <= 1 {
            Vec::new()
        } else {
            self.planner
                .choose_cuts(self.input, &self.prefix, bounds, dim, fanout, eps_prt, rng)
        };
        let child_boxes = bounds.split_many(dim, &cuts)?;
        let mut children = Vec::with_capacity(child_boxes.len());
        for cb in child_boxes {
            children.push(self.recurse(cb, dim + 1, acc, rng)?);
        }
        Ok(children)
    }

    /// Handles a non-root node at `depth ∈ 1..=d` (Alg. 2 lines 5–27).
    fn recurse(
        &mut self,
        bounds: AxisBox,
        depth: usize,
        acc: f64,
        rng: &mut dyn RngCore,
    ) -> Result<TreeNode<DafPayload>, MechanismError> {
        let count = self.prefix.box_count(&bounds);

        // Depth d: terminal level — spend everything left (Alg. 2 line 6).
        if depth == self.d {
            let eps_leaf = self.eps_tot - acc;
            debug_assert!(eps_leaf > 0.0, "remaining budget exhausted at depth d");
            let ncount = count as f64 + sample_laplace(rng, 1.0 / eps_leaf);
            return Ok(TreeNode::leaf(
                bounds,
                depth,
                DafPayload {
                    count,
                    ncount,
                    eps_count: eps_leaf,
                    eps_spent: eps_leaf,
                    acc_after: self.eps_tot,
                    published: true,
                },
            ));
        }

        // Internal level: Eq. (32) budget, q-split, sanitize, fanout.
        let eps_level = self.level_eps[depth - 1];
        let q = self.planner.partition_budget_fraction();
        let (eps_prt, eps_data) = split_level_budget(eps_level, q);
        let mut ncount = count as f64 + sample_laplace(rng, 1.0 / eps_data);
        let mut acc = acc + eps_level;
        let remaining = self.eps_tot - acc;
        let m_real = ebp_m(self.d - depth, ncount.max(1.0), remaining);

        // Stop check (Alg. 2 lines 17–20): prune and re-sanitize with the
        // whole remaining path budget.
        if self.stop.should_stop(ncount, remaining) {
            ncount = count as f64 + sample_laplace(rng, 1.0 / remaining);
            let spent_here = eps_level + remaining;
            acc += remaining;
            debug_assert!((acc - self.eps_tot).abs() < 1e-9);
            return Ok(TreeNode::leaf(
                bounds,
                depth,
                DafPayload {
                    count,
                    ncount,
                    eps_count: remaining,
                    eps_spent: spent_here,
                    acc_after: acc,
                    published: true,
                },
            ));
        }

        let fanout = round_granularity(m_real, bounds.extent(depth));
        let mut node = TreeNode::leaf(
            bounds.clone(),
            depth,
            DafPayload {
                count,
                ncount,
                eps_count: eps_data,
                eps_spent: eps_level,
                acc_after: acc,
                published: false,
            },
        );
        node.children = self.split_and_recurse(&bounds, depth, fanout, eps_prt, acc, rng)?;
        Ok(node)
    }
}

/// Packages a DAF tree's leaves as the released [`SanitizedMatrix`]
/// (also used to re-package after consistency post-processing).
pub(crate) fn sanitized_from_tree(
    mechanism_name: &str,
    eps_tot: f64,
    shape: &dpod_fmatrix::Shape,
    tree: &TreeNode<DafPayload>,
) -> SanitizedMatrix {
    let leaves = tree.leaves();
    debug_assert!(leaves.iter().all(|l| l.payload.published));
    let boxes: Vec<AxisBox> = leaves.iter().map(|l| l.bounds.clone()).collect();
    let counts: Vec<f64> = leaves.iter().map(|l| l.payload.ncount).collect();
    let partitioning = Partitioning::new_unchecked(shape.clone(), boxes);
    SanitizedMatrix::from_partitions(mechanism_name, eps_tot, shape.clone(), partitioning, counts)
}

/// Splits one level's budget into (partitioning, data) shares; `q == 0`
/// gives everything to the data side (DAF-Entropy).
fn split_level_budget(eps_level: f64, q: f64) -> (f64, f64) {
    debug_assert!((0.0..1.0).contains(&q));
    (eps_level * q, eps_level * (1.0 - q))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_cuts_are_interior_and_increasing() {
        assert_eq!(equal_cuts(0, 10, 3), vec![4, 7]);
        assert_eq!(equal_cuts(5, 9, 4), vec![6, 7, 8]);
        assert_eq!(equal_cuts(0, 8, 1), Vec::<usize>::new());
        let cuts = equal_cuts(3, 103, 7);
        assert_eq!(cuts.len(), 6);
        for w in cuts.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(cuts.iter().all(|&c| c > 3 && c < 103));
    }

    #[test]
    fn split_level_budget_conserves() {
        let (p, d) = split_level_budget(0.5, 0.3);
        assert!((p - 0.15).abs() < 1e-12);
        assert!((d - 0.35).abs() < 1e-12);
        let (p0, d0) = split_level_budget(0.5, 0.0);
        assert_eq!(p0, 0.0);
        assert_eq!(d0, 0.5);
    }
}
