use crate::daf::engine::{equal_cuts, DafPayload, DafRun, SplitPlanner};
use crate::daf::StopPolicy;
use crate::{Mechanism, MechanismError, SanitizedMatrix};
use dpod_dp::Epsilon;
use dpod_fmatrix::{AxisBox, DenseMatrix, PrefixSum};
use dpod_partition::tree::TreeNode;
use rand::RngCore;

/// DAF-Entropy (Algorithm 2, §4.2).
///
/// At every node the fanout comes from the entropy-balancing EBP rule
/// applied to the node's sanitized count, the remaining dimensions and the
/// remaining budget; splits are equal-width. Dense regions therefore get
/// recursively finer partitions while sparse regions prune early via the
/// [`StopPolicy`].
///
/// ```
/// use dpod_core::{daf::DafEntropy, Mechanism};
/// # use dpod_dp::Epsilon;
/// # use dpod_fmatrix::{DenseMatrix, Shape};
/// let mut input = DenseMatrix::<u64>::zeros(Shape::new(vec![64, 64]).unwrap());
/// input.add_at(&[10, 10], 10_000).unwrap();
/// let out = DafEntropy::default()
///     .sanitize(&input, Epsilon::new(0.5).unwrap(), &mut dpod_dp::seeded_rng(3))
///     .unwrap();
/// assert_eq!(out.mechanism(), "DAF-Entropy");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DafEntropy {
    /// When to prune a subtree into a leaf.
    pub stop: StopPolicy,
    /// Apply the constrained-inference post-processing of
    /// [`crate::daf::consistency`] before publishing (extension; costs no
    /// extra budget). Off by default — Algorithm 2 publishes raw leaves.
    pub consistency: bool,
}

impl DafEntropy {
    /// A variant that never prunes (ablation reference).
    pub fn without_stop() -> Self {
        DafEntropy {
            stop: StopPolicy::Never,
            ..DafEntropy::default()
        }
    }

    /// A variant with the consistency post-processing enabled.
    pub fn with_consistency() -> Self {
        DafEntropy {
            consistency: true,
            ..DafEntropy::default()
        }
    }

    /// Sanitizes and additionally returns the full decision tree with
    /// per-node budget bookkeeping (tests, visualization, ablations).
    ///
    /// # Errors
    /// Same contract as [`Mechanism::sanitize`].
    pub fn sanitize_with_tree(
        &self,
        input: &DenseMatrix<u64>,
        epsilon: Epsilon,
        rng: &mut dyn RngCore,
    ) -> Result<(SanitizedMatrix, TreeNode<DafPayload>), MechanismError> {
        let (sanitized, mut tree) = DafRun::execute(
            input,
            &EqualWidthPlanner,
            self.stop,
            epsilon,
            self.name(),
            rng,
        )?;
        if !self.consistency {
            return Ok((sanitized, tree));
        }
        crate::daf::consistency::enforce_consistency(&mut tree);
        let refined = crate::daf::engine::sanitized_from_tree(
            self.name(),
            epsilon.value(),
            input.shape(),
            &tree,
        );
        Ok((refined, tree))
    }
}

/// Equal-width, zero-budget split planning.
struct EqualWidthPlanner;

impl SplitPlanner for EqualWidthPlanner {
    fn partition_budget_fraction(&self) -> f64 {
        0.0
    }

    fn choose_cuts(
        &self,
        _input: &DenseMatrix<u64>,
        _prefix: &PrefixSum<i128>,
        bounds: &AxisBox,
        dim: usize,
        fanout: usize,
        _eps_prt: f64,
        _rng: &mut dyn RngCore,
    ) -> Vec<usize> {
        equal_cuts(bounds.lo()[dim], bounds.hi()[dim], fanout)
    }
}

impl Mechanism for DafEntropy {
    fn name(&self) -> &'static str {
        "DAF-Entropy"
    }

    fn sanitize(
        &self,
        input: &DenseMatrix<u64>,
        epsilon: Epsilon,
        rng: &mut dyn RngCore,
    ) -> Result<SanitizedMatrix, MechanismError> {
        Ok(self.sanitize_with_tree(input, epsilon, rng)?.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpod_fmatrix::Shape;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn clustered(dims: &[usize], hot: u64) -> DenseMatrix<u64> {
        let s = Shape::new(dims.to_vec()).unwrap();
        let mut m = DenseMatrix::zeros(s);
        let corner: Vec<usize> = dims.iter().map(|_| 1usize).collect();
        m.add_at(&corner, hot).unwrap();
        m
    }

    #[test]
    fn leaf_partitioning_is_valid() {
        let m = clustered(&[32, 32], 50_000);
        let (out, tree) = DafEntropy::default()
            .sanitize_with_tree(&m, eps(0.5), &mut dpod_dp::seeded_rng(1))
            .unwrap();
        assert!(tree.check_split_invariant().is_ok());
        match out.summary() {
            crate::PartitionSummary::Boxes { partitioning, .. } => {
                assert!(partitioning.validate().is_ok());
            }
            other => panic!("expected boxes, got {other:?}"),
        }
    }

    #[test]
    fn budget_telescopes_on_every_path() {
        let m = clustered(&[16, 16, 16], 20_000);
        let (_, tree) = DafEntropy::default()
            .sanitize_with_tree(&m, eps(0.3), &mut dpod_dp::seeded_rng(2))
            .unwrap();
        for leaf in tree.leaves() {
            assert!(
                (leaf.payload.acc_after - 0.3).abs() < 1e-9,
                "leaf at depth {} spent {}",
                leaf.depth,
                leaf.payload.acc_after
            );
            assert!(leaf.payload.published);
        }
        // Internal nodes must never exceed the budget either.
        tree.visit(&mut |n| assert!(n.payload.acc_after <= 0.3 + 1e-9));
    }

    #[test]
    fn max_depth_is_d() {
        let m = clustered(&[8, 8, 8, 8], 5_000);
        let (_, tree) = DafEntropy::without_stop()
            .sanitize_with_tree(&m, eps(1.0), &mut dpod_dp::seeded_rng(3))
            .unwrap();
        assert!(tree.max_depth() <= 4);
        // Without stop conditions, every leaf is at exactly depth d.
        for leaf in tree.leaves() {
            assert_eq!(leaf.depth, 4);
        }
    }

    #[test]
    fn stop_policy_prunes_sparse_regions() {
        // Empty matrix: everything is noise-dominated, so the default
        // policy prunes aggressively vs the Never policy.
        let m = DenseMatrix::<u64>::zeros(Shape::new(vec![64, 64]).unwrap());
        let (_, pruned) = DafEntropy::default()
            .sanitize_with_tree(&m, eps(0.1), &mut dpod_dp::seeded_rng(4))
            .unwrap();
        let (_, full) = DafEntropy::without_stop()
            .sanitize_with_tree(&m, eps(0.1), &mut dpod_dp::seeded_rng(4))
            .unwrap();
        assert!(
            pruned.num_nodes() < full.num_nodes(),
            "pruned {} vs full {}",
            pruned.num_nodes(),
            full.num_nodes()
        );
    }

    #[test]
    fn adapts_granularity_to_density() {
        // A dense cluster should receive finer partitions than empty space.
        let s = Shape::new(vec![64, 64]).unwrap();
        let mut m = DenseMatrix::<u64>::zeros(s);
        for x in 0..8 {
            for y in 0..8 {
                m.set(&[x, y], 2_000).unwrap();
            }
        }
        let (out, _) = DafEntropy::default()
            .sanitize_with_tree(&m, eps(1.0), &mut dpod_dp::seeded_rng(5))
            .unwrap();
        let crate::PartitionSummary::Boxes { partitioning, .. } = out.summary() else {
            panic!("expected boxes");
        };
        // Mean partition volume inside the cluster vs outside.
        let (mut vol_in, mut n_in, mut vol_out, mut n_out) = (0usize, 0usize, 0usize, 0usize);
        for b in partitioning.boxes() {
            if b.lo()[0] < 8 && b.lo()[1] < 8 {
                vol_in += b.volume();
                n_in += 1;
            } else {
                vol_out += b.volume();
                n_out += 1;
            }
        }
        let mean_in = vol_in as f64 / n_in.max(1) as f64;
        let mean_out = vol_out as f64 / n_out.max(1) as f64;
        assert!(
            mean_in < mean_out,
            "cluster partitions ({mean_in}) should be finer than sparse ({mean_out})"
        );
    }

    #[test]
    fn single_dimension_works() {
        let m = clustered(&[100], 10_000);
        let out = DafEntropy::default()
            .sanitize(&m, eps(0.5), &mut dpod_dp::seeded_rng(6))
            .unwrap();
        assert!((out.total() - 10_000.0).abs() < 3_000.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let m = clustered(&[32, 32], 9_999);
        let a = DafEntropy::default()
            .sanitize(&m, eps(0.4), &mut dpod_dp::seeded_rng(7))
            .unwrap();
        let b = DafEntropy::default()
            .sanitize(&m, eps(0.4), &mut dpod_dp::seeded_rng(7))
            .unwrap();
        assert_eq!(a.matrix().as_slice(), b.matrix().as_slice());
    }
}
