//! The Density-Aware Framework (§4): hierarchical, data-adaptive
//! partitioning with private per-node fanout selection and custom stop
//! conditions.
//!
//! DAF builds a tree over the frequency matrix: the root covers everything,
//! nodes at depth `i` split dimension `i` (0-based), and the maximum height
//! is `d + 1`. Each node privately sanitizes its count (budget per level
//! from the closed-form allocation of §4.4), derives its fanout from the
//! EBP rule applied to the *remaining* dimensions and budget, and prunes
//! itself into a leaf when a [`StopPolicy`] fires — re-spending the whole
//! remaining path budget on a fresh, more accurate leaf count.
//!
//! Two split strategies (the paper's two instantiations):
//! * [`DafEntropy`] — equal-width splits (Algorithm 2);
//! * [`DafHomogeneity`] — splits chosen among `p` random candidate cut
//!   sets by a noisy intra-partition homogeneity objective (Algorithm 3,
//!   Lemma 4.1).

mod budget;
pub mod consistency;
mod engine;
mod entropy;
mod homogeneity;
mod stop;

pub use budget::level_budgets;
pub use engine::DafPayload;
pub use entropy::DafEntropy;
pub use homogeneity::DafHomogeneity;
pub use stop::StopPolicy;

/// Fraction of the total budget reserved for the root's noisy count
/// (Eq. 33: ε₀ = ε_tot / 100).
pub const ROOT_BUDGET_FRACTION: f64 = 0.01;
