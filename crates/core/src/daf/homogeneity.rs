use crate::daf::engine::{equal_cuts, DafPayload, DafRun, SplitPlanner};
use crate::daf::StopPolicy;
use crate::{Mechanism, MechanismError, SanitizedMatrix};
use dpod_dp::laplace::sample_laplace;
use dpod_dp::Epsilon;
use dpod_fmatrix::{AxisBox, DenseMatrix, PrefixSum};
use dpod_partition::tree::TreeNode;
use rand::{Rng, RngCore};

/// DAF-Homogeneity (Algorithm 3, §4.3).
///
/// Extends DAF-Entropy with data-aware split *positions*: each node
/// diverts a fraction `q` of its level budget to privately scoring `p`
/// random candidate cut sets by the intra-partition homogeneity objective
/// (Eq. 22; L1 distance of entries to their cluster mean), picking the
/// candidate with the lowest noisy objective. Lemma 4.1 bounds the
/// objective's sensitivity by 2; with `p` candidates evaluated on the same
/// node, sequential composition gives each a budget of `ε_prt/p`, i.e.
/// noise scale `2p/ε_prt` (the paper's line 14 inverts this — DESIGN.md
/// §3.5 documents why we implement the DP-correct direction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DafHomogeneity {
    /// When to prune a subtree into a leaf.
    pub stop: StopPolicy,
    /// Fraction `q` of each level budget reserved for split selection
    /// (the paper sets 0.3 experimentally).
    pub q: f64,
    /// Number of candidate cut sets `p` per node.
    pub candidates: usize,
}

impl Default for DafHomogeneity {
    fn default() -> Self {
        DafHomogeneity {
            stop: StopPolicy::default(),
            q: 0.3,
            candidates: 6,
        }
    }
}

impl DafHomogeneity {
    /// Sanitizes and additionally returns the decision tree.
    ///
    /// # Errors
    /// Same contract as [`Mechanism::sanitize`]; also rejects invalid
    /// `q ∉ (0,1)` or `candidates == 0`.
    pub fn sanitize_with_tree(
        &self,
        input: &DenseMatrix<u64>,
        epsilon: Epsilon,
        rng: &mut dyn RngCore,
    ) -> Result<(SanitizedMatrix, TreeNode<DafPayload>), MechanismError> {
        if !(self.q > 0.0 && self.q < 1.0) {
            return Err(MechanismError::Invalid(format!(
                "partition budget ratio q must be in (0,1), got {}",
                self.q
            )));
        }
        if self.candidates == 0 {
            return Err(MechanismError::Invalid(
                "need at least one candidate cut set".into(),
            ));
        }
        let planner = HomogeneityPlanner {
            q: self.q,
            p: self.candidates,
        };
        DafRun::execute(input, &planner, self.stop, epsilon, self.name(), rng)
    }
}

impl Mechanism for DafHomogeneity {
    fn name(&self) -> &'static str {
        "DAF-Homogeneity"
    }

    fn sanitize(
        &self,
        input: &DenseMatrix<u64>,
        epsilon: Epsilon,
        rng: &mut dyn RngCore,
    ) -> Result<SanitizedMatrix, MechanismError> {
        Ok(self.sanitize_with_tree(input, epsilon, rng)?.0)
    }
}

struct HomogeneityPlanner {
    q: f64,
    p: usize,
}

impl SplitPlanner for HomogeneityPlanner {
    fn partition_budget_fraction(&self) -> f64 {
        self.q
    }

    fn choose_cuts(
        &self,
        input: &DenseMatrix<u64>,
        prefix: &PrefixSum<i128>,
        bounds: &AxisBox,
        dim: usize,
        fanout: usize,
        eps_prt: f64,
        rng: &mut dyn RngCore,
    ) -> Vec<usize> {
        debug_assert!(fanout >= 2);
        // Segment skeleton: the equal-width boundaries delimit the segment
        // each candidate cut is drawn from (§4.3: "drawing uniformly random
        // split positions from every partition").
        let skeleton = equal_cuts(bounds.lo()[dim], bounds.hi()[dim], fanout);
        if eps_prt <= 0.0 {
            return skeleton; // degenerate budget ⇒ fall back to equal width
        }
        // Laplace scale for each candidate's objective (sensitivity 2,
        // budget ε_prt/p per candidate).
        let scale = 2.0 * self.p as f64 / eps_prt;
        let mut best: Option<(f64, Vec<usize>)> = None;
        for _ in 0..self.p {
            let cuts = draw_candidate(bounds, dim, &skeleton, rng);
            let objective = homogeneity_objective(input, prefix, bounds, dim, &cuts);
            let noisy = objective + sample_laplace(rng, scale);
            if best.as_ref().is_none_or(|(b, _)| noisy < *b) {
                best = Some((noisy, cuts));
            }
        }
        best.expect("p >= 1 candidates").1
    }
}

/// Draws one candidate cut set: the j-th cut uniform over
/// `[skeleton[j−1]+1, skeleton[j]]` (with `skeleton[−1] = lo`), which keeps
/// cuts strictly increasing and strictly interior by construction.
fn draw_candidate(
    bounds: &AxisBox,
    dim: usize,
    skeleton: &[usize],
    rng: &mut dyn RngCore,
) -> Vec<usize> {
    let lo = bounds.lo()[dim];
    let mut cuts = Vec::with_capacity(skeleton.len());
    let mut seg_start = lo;
    for &seg_end in skeleton {
        // Integer-uniform over [seg_start+1, seg_end].
        let cut = rng.gen_range(seg_start + 1..=seg_end);
        cuts.push(cut);
        seg_start = seg_end;
    }
    cuts
}

/// The homogeneity objective (Eq. 22): `Σ_clusters Σ_cells |f − μ_cluster|`
/// for the split of `bounds` along `dim` at `cuts`.
fn homogeneity_objective(
    input: &DenseMatrix<u64>,
    prefix: &PrefixSum<i128>,
    bounds: &AxisBox,
    dim: usize,
    cuts: &[usize],
) -> f64 {
    let clusters = bounds
        .split_many(dim, cuts)
        .expect("candidate cuts are interior and increasing");
    let mut objective = 0.0;
    for cluster in &clusters {
        let vol = cluster.volume();
        if vol == 0 {
            continue;
        }
        let mean = prefix.box_count(cluster) as f64 / vol as f64;
        objective += input
            .box_values(cluster)
            .map(|(_, v)| (v as f64 - mean).abs())
            .sum::<f64>();
    }
    objective
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpod_fmatrix::Shape;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn objective_zero_for_homogeneous_clusters() {
        let s = Shape::new(vec![8]).unwrap();
        // Two perfectly homogeneous halves: [5,5,5,5 | 9,9,9,9].
        let m = DenseMatrix::from_vec(s, vec![5, 5, 5, 5, 9, 9, 9, 9]).unwrap();
        let prefix = PrefixSum::from_counts(&m);
        let b = AxisBox::full(m.shape());
        let at_boundary = homogeneity_objective(&m, &prefix, &b, 0, &[4]);
        assert_eq!(at_boundary, 0.0);
        // Any other cut mixes the two levels and scores worse.
        for cut in [1, 2, 3, 5, 6, 7] {
            let o = homogeneity_objective(&m, &prefix, &b, 0, &[cut]);
            assert!(o > 0.0, "cut {cut} scored {o}");
        }
    }

    #[test]
    fn objective_matches_hand_computation() {
        let s = Shape::new(vec![4]).unwrap();
        let m = DenseMatrix::from_vec(s, vec![0, 10, 0, 10]).unwrap();
        let prefix = PrefixSum::from_counts(&m);
        let b = AxisBox::full(m.shape());
        // Cut at 2: clusters [0,10] (μ=5 ⇒ 10) and [0,10] (μ=5 ⇒ 10).
        assert_eq!(homogeneity_objective(&m, &prefix, &b, 0, &[2]), 20.0);
    }

    #[test]
    fn candidates_are_strictly_increasing_and_interior() {
        let s = Shape::new(vec![100, 4]).unwrap();
        let b = AxisBox::full(&s);
        let skeleton = equal_cuts(0, 100, 5);
        let mut rng = dpod_dp::seeded_rng(1);
        for _ in 0..200 {
            let cuts = draw_candidate(&b, 0, &skeleton, &mut rng);
            assert_eq!(cuts.len(), 4);
            for w in cuts.windows(2) {
                assert!(w[0] < w[1], "{cuts:?}");
            }
            assert!(cuts[0] > 0 && *cuts.last().unwrap() < 100);
        }
    }

    #[test]
    fn finds_good_split_with_generous_budget() {
        // Step function along dim 0: a generous partition budget should
        // usually recover a near-boundary split at the root level.
        let s = Shape::new(vec![60, 6]).unwrap();
        let mut data = vec![0u64; 360];
        for (i, v) in data.iter_mut().enumerate() {
            if i / 6 < 20 {
                *v = 50;
            }
        }
        let m = DenseMatrix::from_vec(s, data).unwrap();
        let prefix = PrefixSum::from_counts(&m);
        let planner = HomogeneityPlanner { q: 0.3, p: 12 };
        let b = AxisBox::full(m.shape());
        let mut rng = dpod_dp::seeded_rng(2);
        let cuts = planner.choose_cuts(&m, &prefix, &b, 0, 2, 100.0, &mut rng);
        // One cut; homogeneity prefers it near the step at 20.
        assert!(
            (cuts[0] as i64 - 20).unsigned_abs() <= 6,
            "cut {cuts:?} far from the step at 20"
        );
    }

    #[test]
    fn sanitize_produces_valid_partitioning_and_budget() {
        let s = Shape::new(vec![24, 24]).unwrap();
        let mut m = DenseMatrix::<u64>::zeros(s);
        for x in 0..6 {
            for y in 0..6 {
                m.set(&[x, y], 500).unwrap();
            }
        }
        let (out, tree) = DafHomogeneity::default()
            .sanitize_with_tree(&m, eps(0.5), &mut dpod_dp::seeded_rng(3))
            .unwrap();
        assert!(tree.check_split_invariant().is_ok());
        let crate::PartitionSummary::Boxes { partitioning, .. } = out.summary() else {
            panic!("expected boxes");
        };
        assert!(partitioning.validate().is_ok());
        for leaf in tree.leaves() {
            assert!((leaf.payload.acc_after - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_bad_configuration() {
        let m = DenseMatrix::<u64>::zeros(Shape::new(vec![8, 8]).unwrap());
        let mut rng = dpod_dp::seeded_rng(4);
        let bad_q = DafHomogeneity {
            q: 1.0,
            ..DafHomogeneity::default()
        };
        assert!(bad_q.sanitize(&m, eps(1.0), &mut rng).is_err());
        let bad_p = DafHomogeneity {
            candidates: 0,
            ..DafHomogeneity::default()
        };
        assert!(bad_p.sanitize(&m, eps(1.0), &mut rng).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let s = Shape::new(vec![20, 20]).unwrap();
        let mut m = DenseMatrix::<u64>::zeros(s);
        m.add_at(&[3, 3], 4_000).unwrap();
        let a = DafHomogeneity::default()
            .sanitize(&m, eps(0.3), &mut dpod_dp::seeded_rng(5))
            .unwrap();
        let b = DafHomogeneity::default()
            .sanitize(&m, eps(0.3), &mut dpod_dp::seeded_rng(5))
            .unwrap();
        assert_eq!(a.matrix().as_slice(), b.matrix().as_slice());
    }
}
