//! Constrained-inference post-processing for DAF trees (extension).
//!
//! The DAF recursion sanitizes *every* node's count but publishes only the
//! leaves — the internal noisy counts steer fanout and stop decisions and
//! are then discarded. Hay et al. ("Boosting the accuracy of
//! differentially private histograms through consistency") showed those
//! ancestors carry recoverable signal: enforcing the tree constraint
//! (parent = Σ children) by inverse-variance weighting yields uniformly
//! lower-variance estimates. Post-processing of already-released noisy
//! values costs no additional privacy budget.
//!
//! Two passes:
//! 1. **Upward**: each node's count is re-estimated as the
//!    inverse-variance-weighted average of its own noisy count and the sum
//!    of its children's (already refined) estimates.
//! 2. **Downward**: each parent/children mismatch is redistributed over
//!    the children proportionally to their variances, making the tree
//!    exactly consistent; the adjusted leaves are published.

use crate::daf::engine::DafPayload;
use dpod_partition::tree::TreeNode;

/// Refined estimate and its variance, produced by the upward pass.
#[derive(Debug, Clone, Copy)]
struct Estimate {
    value: f64,
    variance: f64,
}

/// Runs both passes and overwrites every node's `ncount` with its
/// consistent estimate. Leaf `ncount`s afterwards sum exactly to the
/// root's refined estimate along every internal node.
pub fn enforce_consistency(root: &mut TreeNode<DafPayload>) {
    let up = upward(root);
    downward(root, up.value);
}

/// Laplace variance of the node's own released count.
fn own_variance(p: &DafPayload) -> f64 {
    debug_assert!(p.eps_count > 0.0);
    2.0 / (p.eps_count * p.eps_count)
}

/// Upward pass: weighted fusion of own count with the children's sum.
fn upward(node: &mut TreeNode<DafPayload>) -> Estimate {
    let own = Estimate {
        value: node.payload.ncount,
        variance: own_variance(&node.payload),
    };
    if node.is_leaf() {
        node.payload.ncount = own.value;
        return own;
    }
    let mut child_sum = 0.0;
    let mut child_var = 0.0;
    for c in &mut node.children {
        let e = upward(c);
        child_sum += e.value;
        child_var += e.variance;
    }
    // Inverse-variance weighting of two independent estimates of the same
    // quantity (the node's true count).
    let w_own = child_var / (own.variance + child_var);
    let fused = Estimate {
        value: w_own * own.value + (1.0 - w_own) * child_sum,
        variance: own.variance * child_var / (own.variance + child_var),
    };
    node.payload.ncount = fused.value;
    fused
}

/// Downward pass: pin the node to `target` and push the mismatch into the
/// children proportionally to their variance share (high-variance children
/// absorb more correction).
fn downward(node: &mut TreeNode<DafPayload>, target: f64) {
    node.payload.ncount = target;
    if node.is_leaf() {
        return;
    }
    let child_sum: f64 = node.children.iter().map(|c| c.payload.ncount).sum();
    let total_var: f64 = node.children.iter().map(|c| own_variance(&c.payload)).sum();
    let mismatch = target - child_sum;
    let num_children = node.children.len() as f64;
    for c in &mut node.children {
        let share = if total_var > 0.0 {
            own_variance(&c.payload) / total_var
        } else {
            1.0 / num_children
        };
        let t = c.payload.ncount + mismatch * share;
        downward(c, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daf::DafEntropy;
    use dpod_dp::Epsilon;
    use dpod_fmatrix::{DenseMatrix, Shape};

    fn sample_tree() -> TreeNode<DafPayload> {
        let mut m = DenseMatrix::<u64>::zeros(Shape::new(vec![16, 16]).unwrap());
        for x in 0..4 {
            for y in 0..4 {
                m.set(&[x, y], 100).unwrap();
            }
        }
        DafEntropy::default()
            .sanitize_with_tree(&m, Epsilon::new(0.5).unwrap(), &mut dpod_dp::seeded_rng(3))
            .unwrap()
            .1
    }

    #[test]
    fn tree_is_exactly_consistent_afterwards() {
        let mut tree = sample_tree();
        enforce_consistency(&mut tree);
        tree.visit(&mut |n| {
            if !n.is_leaf() {
                let child_sum: f64 = n.children.iter().map(|c| c.payload.ncount).sum();
                assert!(
                    (child_sum - n.payload.ncount).abs() < 1e-6,
                    "node at depth {} inconsistent: {} vs {}",
                    n.depth,
                    n.payload.ncount,
                    child_sum
                );
            }
        });
    }

    #[test]
    fn consistency_reduces_leaf_error_on_average() {
        // Statistical check over seeds: refined leaf counts should be at
        // least as close to the truth (in total absolute error) as the raw
        // ones, on average.
        let mut m = DenseMatrix::<u64>::zeros(Shape::new(vec![20, 20]).unwrap());
        for x in 0..20 {
            for y in 0..20 {
                m.set(&[x, y], ((x * y) % 30) as u64 * 10).unwrap();
            }
        }
        let eps = Epsilon::new(0.2).unwrap();
        let (mut raw_err, mut ref_err) = (0.0, 0.0);
        for seed in 0..12 {
            let (_, mut tree) = DafEntropy::default()
                .sanitize_with_tree(&m, eps, &mut dpod_dp::seeded_rng(seed))
                .unwrap();
            raw_err += tree
                .leaves()
                .iter()
                .map(|l| (l.payload.ncount - l.payload.count as f64).abs())
                .sum::<f64>();
            enforce_consistency(&mut tree);
            ref_err += tree
                .leaves()
                .iter()
                .map(|l| (l.payload.ncount - l.payload.count as f64).abs())
                .sum::<f64>();
        }
        assert!(
            ref_err <= raw_err * 1.02,
            "consistency hurt accuracy: raw {raw_err:.1} vs refined {ref_err:.1}"
        );
    }

    #[test]
    fn single_node_tree_is_untouched() {
        let mut leaf = TreeNode::leaf(
            dpod_fmatrix::AxisBox::new(vec![0], vec![4]).unwrap(),
            0,
            DafPayload {
                count: 10,
                ncount: 11.5,
                eps_count: 1.0,
                eps_spent: 1.0,
                acc_after: 1.0,
                published: true,
            },
        );
        enforce_consistency(&mut leaf);
        assert_eq!(leaf.payload.ncount, 11.5);
    }
}
