//! Per-level budget allocation for the DAF tree (§4.4, Eqs. 29–32).
//!
//! With root fanout `m₀` and an assumed geometric fanout progression, depth
//! `i` holds ≈ `m₀^i` nodes; minimizing total noise variance
//! `Σ m₀^i/ε_i²` subject to `Σ ε_i = ε'_tot` (Lagrange/KKT) yields
//! `ε_i ∝ m₀^{i/3}` — deeper levels get more budget, which matters because
//! the published release consists of leaf counts.

/// Computes `ε_1 … ε_d` by Eq. (32) for remaining budget `eps_prime_tot`
/// (that is, ε_tot − ε₀) and root fanout `m0`.
///
/// `m0 ≤ 1` (or within float wobble of 1) degenerates Eq. (32) to 0/0; the
/// limit is the uniform split `ε_i = ε'_tot / d`, which we return
/// explicitly (DESIGN.md §3.11).
///
/// # Panics
/// Panics when `d == 0` or `eps_prime_tot <= 0` (programmer errors —
/// mechanisms validate inputs before reaching here).
pub fn level_budgets(eps_prime_tot: f64, m0: f64, d: usize) -> Vec<f64> {
    assert!(d > 0, "tree must have at least one level below the root");
    assert!(
        eps_prime_tot > 0.0 && eps_prime_tot.is_finite(),
        "remaining budget must be positive"
    );
    let m0 = if m0.is_finite() { m0.max(1.0) } else { 1.0 };
    if (m0 - 1.0).abs() < 1e-9 {
        return vec![eps_prime_tot / d as f64; d];
    }
    let r = m0.powf(1.0 / 3.0);
    // Σ_{i=1..d} r^i = r (1 − r^d)/(1 − r); ε_i = ε' r^i / Σ.
    let denom = r * (1.0 - r.powi(d as i32)) / (1.0 - r);
    (1..=d)
        .map(|i| eps_prime_tot * r.powi(i as i32) / denom)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_sum_to_total() {
        for (m0, d) in [(4.0, 2), (41.4, 4), (2.5, 6), (100.0, 3)] {
            let b = level_budgets(0.99, m0, d);
            let sum: f64 = b.iter().sum();
            assert!((sum - 0.99).abs() < 1e-9, "m0={m0} d={d}: sum {sum}");
            assert!(b.iter().all(|&e| e > 0.0));
        }
    }

    #[test]
    fn deeper_levels_get_more_budget() {
        let b = level_budgets(1.0, 8.0, 5);
        for w in b.windows(2) {
            assert!(w[1] > w[0], "budget must grow with depth: {b:?}");
        }
        // Growth ratio is m0^(1/3) = 2.
        assert!((b[1] / b[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unit_fanout_falls_back_to_uniform() {
        let b = level_budgets(0.9, 1.0, 3);
        for &e in &b {
            assert!((e - 0.3).abs() < 1e-12);
        }
        // Near-1 fanouts take the same branch (0/0 guard).
        let b2 = level_budgets(0.9, 1.0 + 1e-12, 3);
        for &e in &b2 {
            assert!((e - 0.3).abs() < 1e-9);
        }
    }

    #[test]
    fn sub_unit_and_nan_fanouts_are_clamped() {
        let b = level_budgets(1.0, 0.2, 2);
        assert!((b[0] - 0.5).abs() < 1e-12);
        let b2 = level_budgets(1.0, f64::NAN, 2);
        assert!((b2[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn matches_paper_closed_form() {
        // Eq. (32): ε_i = ε' m0^{i/3} (1 − m0^{1/3}) / (m0^{1/3}(1 − m0^{d/3}))
        let (eps, m0, d) = (0.99, 27.0, 3);
        let b = level_budgets(eps, m0, d);
        for (i, &got) in b.iter().enumerate() {
            let i1 = (i + 1) as f64;
            let expected = eps * m0.powf(i1 / 3.0) * (1.0 - m0.powf(1.0 / 3.0))
                / (m0.powf(1.0 / 3.0) * (1.0 - m0.powf(d as f64 / 3.0)));
            assert!(
                (got - expected).abs() < 1e-9,
                "level {i}: {got} vs {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_depth_panics() {
        let _ = level_budgets(1.0, 2.0, 0);
    }
}
