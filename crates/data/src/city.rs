//! A seeded generative city-population model.
//!
//! Substitutes for the proprietary Veraset GPS dataset used in §6.1 (see
//! DESIGN.md §5): what the paper's mechanisms react to is the *density
//! structure* of the population histogram — hotspots, corridors, sparse
//! suburbs — not GPS semantics. The model is a mixture of Gaussian
//! hotspots over the unit square plus a uniform background, with presets
//! calibrated to the three density archetypes the paper selects
//! (New York: high, Denver: moderate, Detroit: low).

use crate::dist::sample_normal;
use dpod_fmatrix::{DenseMatrix, Shape};
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// One Gaussian population hotspot in the unit square.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hotspot {
    /// Centre in `[0,1)²`.
    pub center: [f64; 2],
    /// Isotropic spread (standard deviation, unit-square scale).
    pub sigma: f64,
    /// Relative mass/attraction of the hotspot.
    pub weight: f64,
}

/// A city: a hotspot mixture plus uniform background.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CityModel {
    /// Display name used by the harness ("New York", …).
    pub name: String,
    /// The hotspot mixture (must be non-empty).
    pub hotspots: Vec<Hotspot>,
    /// Probability that a point is uniform background instead of
    /// hotspot-attached. In `[0, 1)`.
    pub background: f64,
}

/// The three Veraset city archetypes of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum City {
    /// High density: one dominant CBD, a dense corridor, many sharp
    /// secondary centres, little background.
    NewYork,
    /// Moderate density: a CBD plus scattered medium hotspots and moderate
    /// sprawl.
    Denver,
    /// Low density: few, wide, weak hotspots over a flat background.
    Detroit,
}

impl City {
    /// All archetypes, in the paper's presentation order.
    pub const ALL: [City; 3] = [City::NewYork, City::Denver, City::Detroit];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            City::NewYork => "New York",
            City::Denver => "Denver",
            City::Detroit => "Detroit",
        }
    }

    /// Builds the deterministic preset model for this archetype.
    pub fn model(self) -> CityModel {
        // A fixed internal seed per city makes the preset a constant:
        // scattered neighbourhood hotspots are drawn once, reproducibly.
        match self {
            City::NewYork => {
                let mut hs = vec![Hotspot {
                    center: [0.52, 0.55],
                    sigma: 0.012,
                    weight: 40.0,
                }];
                // A dense Manhattan-like corridor.
                for i in 0..8 {
                    let t = i as f64 / 7.0;
                    hs.push(Hotspot {
                        center: [0.40 + 0.25 * t, 0.35 + 0.45 * t],
                        sigma: 0.015,
                        weight: 10.0,
                    });
                }
                hs.extend(scattered(0x4E59, 22, 0.02..0.05, 2.0..6.0));
                CityModel {
                    name: "New York".into(),
                    hotspots: hs,
                    background: 0.05,
                }
            }
            City::Denver => {
                let mut hs = vec![Hotspot {
                    center: [0.50, 0.50],
                    sigma: 0.03,
                    weight: 20.0,
                }];
                hs.extend(scattered(0x4445, 12, 0.04..0.08, 2.0..5.0));
                CityModel {
                    name: "Denver".into(),
                    hotspots: hs,
                    background: 0.12,
                }
            }
            City::Detroit => {
                let mut hs = vec![Hotspot {
                    center: [0.50, 0.45],
                    sigma: 0.05,
                    weight: 8.0,
                }];
                hs.extend(scattered(0x4454, 6, 0.06..0.10, 1.5..3.0));
                CityModel {
                    name: "Detroit".into(),
                    hotspots: hs,
                    background: 0.25,
                }
            }
        }
    }
}

/// Draws `n` scattered hotspots with sigma/weight in the given ranges.
fn scattered(
    seed: u64,
    n: usize,
    sigma: std::ops::Range<f64>,
    weight: std::ops::Range<f64>,
) -> Vec<Hotspot> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Hotspot {
            center: [rng.gen_range(0.05..0.95), rng.gen_range(0.05..0.95)],
            sigma: rng.gen_range(sigma.clone()),
            weight: rng.gen_range(weight.clone()),
        })
        .collect()
}

impl CityModel {
    /// Samples one point in `[0,1)²` from the population distribution.
    pub fn sample_point(&self, rng: &mut dyn RngCore) -> [f64; 2] {
        debug_assert!(!self.hotspots.is_empty(), "city needs hotspots");
        if rng.gen::<f64>() < self.background {
            return [rng.gen::<f64>(), rng.gen::<f64>()];
        }
        let h = self.pick_weighted(rng);
        let x = sample_normal(rng, h.center[0], h.sigma);
        let y = sample_normal(rng, h.center[1], h.sigma);
        [clamp_unit(x), clamp_unit(y)]
    }

    /// Samples `n` points.
    pub fn sample_points(&self, n: usize, rng: &mut dyn RngCore) -> Vec<[f64; 2]> {
        (0..n).map(|_| self.sample_point(rng)).collect()
    }

    /// Builds the `grid × grid` population frequency matrix from `n`
    /// sampled points (the paper's 1000×1000 city histograms).
    pub fn population_matrix(
        &self,
        grid: usize,
        n: usize,
        rng: &mut dyn RngCore,
    ) -> DenseMatrix<u64> {
        let shape = Shape::new(vec![grid, grid]).expect("valid grid");
        let mut m = DenseMatrix::<u64>::zeros(shape);
        for _ in 0..n {
            let p = self.sample_point(rng);
            let coords = [to_cell(p[0], grid), to_cell(p[1], grid)];
            let idx = m.shape().flat_index_unchecked(&coords);
            m.set_flat(idx, m.get_flat(idx) + 1);
        }
        m
    }

    /// Picks a hotspot with probability proportional to its weight.
    pub fn pick_weighted(&self, rng: &mut dyn RngCore) -> &Hotspot {
        let total: f64 = self.hotspots.iter().map(|h| h.weight).sum();
        let mut u = rng.gen::<f64>() * total;
        for h in &self.hotspots {
            u -= h.weight;
            if u <= 0.0 {
                return h;
            }
        }
        self.hotspots.last().expect("non-empty hotspots")
    }

    /// Picks a hotspot by a gravity rule: probability proportional to
    /// `weight · exp(−dist(from, centre)/decay)`. Used to pair trip
    /// origins with plausible destinations.
    pub fn pick_gravity(&self, from: [f64; 2], decay: f64, rng: &mut dyn RngCore) -> &Hotspot {
        debug_assert!(decay > 0.0);
        let scores: Vec<f64> = self
            .hotspots
            .iter()
            .map(|h| h.weight * (-dist(from, h.center) / decay).exp())
            .collect();
        let total: f64 = scores.iter().sum();
        let mut u = rng.gen::<f64>() * total;
        for (h, s) in self.hotspots.iter().zip(&scores) {
            u -= s;
            if u <= 0.0 {
                return h;
            }
        }
        self.hotspots.last().expect("non-empty hotspots")
    }

    /// The hotspot whose centre is nearest to `p`.
    pub fn nearest_hotspot(&self, p: [f64; 2]) -> &Hotspot {
        self.hotspots
            .iter()
            .min_by(|a, b| {
                dist(p, a.center)
                    .partial_cmp(&dist(p, b.center))
                    .expect("finite distances")
            })
            .expect("non-empty hotspots")
    }
}

/// Euclidean distance in the unit square.
#[inline]
pub(crate) fn dist(a: [f64; 2], b: [f64; 2]) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    (dx * dx + dy * dy).sqrt()
}

/// Clamps a coordinate into `[0, 1)`.
#[inline]
pub(crate) fn clamp_unit(x: f64) -> f64 {
    x.clamp(0.0, 1.0 - 1e-9)
}

/// Maps a unit coordinate to a grid cell index.
#[inline]
pub(crate) fn to_cell(x: f64, grid: usize) -> usize {
    ((x * grid as f64) as usize).min(grid - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpod_fmatrix::entropy::matrix_entropy;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn presets_are_deterministic_constants() {
        assert_eq!(City::NewYork.model(), City::NewYork.model());
        assert_eq!(City::Detroit.model(), City::Detroit.model());
    }

    #[test]
    fn points_stay_in_unit_square() {
        let city = City::NewYork.model();
        let mut r = rng(1);
        for _ in 0..5_000 {
            let [x, y] = city.sample_point(&mut r);
            assert!((0.0..1.0).contains(&x) && (0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn population_matrix_conserves_mass() {
        let m = City::Denver
            .model()
            .population_matrix(64, 10_000, &mut rng(2));
        assert_eq!(m.total_u64(), 10_000);
    }

    #[test]
    fn density_archetypes_are_ordered() {
        // Peak concentration: New York sharpest, Detroit flattest. Use the
        // max-cell share on a coarse grid as a robust statistic.
        let mut shares = Vec::new();
        for city in City::ALL {
            let m = city.model().population_matrix(64, 60_000, &mut rng(3));
            shares.push(m.max_f64().unwrap() / m.total());
        }
        assert!(
            shares[0] > shares[1] && shares[1] > shares[2],
            "peak shares not ordered NY > Denver > Detroit: {shares:?}"
        );
    }

    #[test]
    fn detroit_has_highest_spread_entropy() {
        // Flat background ⇒ mass spread over more cells ⇒ higher entropy.
        let h: Vec<f64> = City::ALL
            .iter()
            .map(|c| {
                let m = c.model().population_matrix(64, 60_000, &mut rng(4));
                matrix_entropy(&m)
            })
            .collect();
        assert!(h[2] > h[0], "Detroit {h:?} must spread more than New York");
    }

    #[test]
    fn gravity_prefers_nearby_heavy_hotspots() {
        let city = CityModel {
            name: "toy".into(),
            hotspots: vec![
                Hotspot {
                    center: [0.1, 0.1],
                    sigma: 0.01,
                    weight: 1.0,
                },
                Hotspot {
                    center: [0.9, 0.9],
                    sigma: 0.01,
                    weight: 1.0,
                },
            ],
            background: 0.0,
        };
        let mut r = rng(5);
        let near = (0..2_000)
            .filter(|_| {
                let h = city.pick_gravity([0.1, 0.1], 0.1, &mut r);
                h.center == [0.1, 0.1]
            })
            .count();
        assert!(near > 1_800, "gravity pick chose near hotspot {near}/2000");
    }

    #[test]
    fn nearest_hotspot_is_nearest() {
        let city = City::Denver.model();
        let p = [0.5, 0.5];
        let nearest = city.nearest_hotspot(p);
        for h in &city.hotspots {
            assert!(dist(p, nearest.center) <= dist(p, h.center) + 1e-12);
        }
    }

    #[test]
    fn helpers() {
        assert_eq!(to_cell(0.999, 10), 9);
        assert_eq!(to_cell(0.0, 10), 0);
        assert_eq!(to_cell(1.0, 10), 9, "boundary clamps into the grid");
        assert!(clamp_unit(1.7) < 1.0);
        assert_eq!(clamp_unit(-0.3), 0.0);
    }
}
