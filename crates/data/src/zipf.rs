//! Synthetic Zipf frequency matrices (§6.1).
//!
//! Each data point's coordinate in dimension `i` is an independent draw
//! from a finite Zipf law over `{1, …, F_i}` with exponent `a`; larger `a`
//! means heavier concentration near the origin corner (more skew — the
//! opposite sense of the Gaussian generator's variance knob, as the paper
//! notes).

use crate::dist::Zipf;
use dpod_fmatrix::{DenseMatrix, Shape};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Configuration for a Zipf synthetic frequency matrix.
///
/// ```
/// use dpod_data::ZipfConfig;
/// use dpod_fmatrix::Shape;
/// let cfg = ZipfConfig {
///     shape: Shape::new(vec![100, 100]).unwrap(),
///     num_points: 1_000,
///     a: 1.5,
/// };
/// let m = cfg.generate(&mut rand::thread_rng());
/// assert_eq!(m.total_u64(), 1_000);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ZipfConfig {
    /// Domain of the frequency matrix.
    pub shape: Shape,
    /// Number of data points to draw.
    pub num_points: usize,
    /// Zipf exponent; higher ⇒ more skew.
    pub a: f64,
}

impl ZipfConfig {
    /// Accumulates `num_points` i.i.d. Zipf points into a matrix.
    ///
    /// # Panics
    /// Panics when `a` is not finite/positive (programmer error surfaced
    /// from the sampler constructor).
    pub fn generate(&self, rng: &mut dyn RngCore) -> DenseMatrix<u64> {
        let d = self.shape.ndim();
        let samplers: Vec<Zipf> = (0..d)
            .map(|i| Zipf::new(self.shape.dim(i), self.a).expect("valid Zipf parameters"))
            .collect();
        let mut m = DenseMatrix::<u64>::zeros(self.shape.clone());
        let mut coords = vec![0usize; d];
        for _ in 0..self.num_points {
            for (c, z) in coords.iter_mut().zip(&samplers) {
                // Zipf supports {1..F}; cells are 0-based.
                *c = z.sample(rng) - 1;
            }
            let idx = m.shape().flat_index_unchecked(&coords);
            m.set_flat(idx, m.get_flat(idx).saturating_add(1));
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpod_fmatrix::entropy::matrix_entropy;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn cfg(dims: &[usize], n: usize, a: f64) -> ZipfConfig {
        ZipfConfig {
            shape: Shape::new(dims.to_vec()).unwrap(),
            num_points: n,
            a,
        }
    }

    #[test]
    fn conserves_point_count() {
        let m = cfg(&[40, 40], 3_000, 1.5).generate(&mut rng(1));
        assert_eq!(m.total_u64(), 3_000);
    }

    #[test]
    fn higher_a_is_more_skewed() {
        let mild = cfg(&[32, 32], 30_000, 1.1).generate(&mut rng(2));
        let steep = cfg(&[32, 32], 30_000, 3.0).generate(&mut rng(2));
        assert!(matrix_entropy(&steep) < matrix_entropy(&mild));
    }

    #[test]
    fn mass_concentrates_at_origin_corner() {
        let m = cfg(&[16, 16], 10_000, 2.5).generate(&mut rng(3));
        let corner = m.get(&[0, 0]).unwrap();
        assert!(
            corner as f64 > 0.3 * m.total(),
            "origin cell holds {corner} of {}",
            m.total()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = cfg(&[20, 20, 20], 2_000, 1.8).generate(&mut rng(11));
        let b = cfg(&[20, 20, 20], 2_000, 1.8).generate(&mut rng(11));
        assert_eq!(a, b);
    }
}
