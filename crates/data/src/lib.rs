//! # dpod-data
//!
//! Workload generation for the `dp-odmatrix` experiments (§6.1 of the
//! paper):
//!
//! * [`dist`] — from-scratch samplers (Box–Muller normal, inverse-CDF
//!   Zipf) so the whole data path is under this workspace's tests;
//! * [`gaussian`] — the paper's synthetic *Gaussian* frequency matrices
//!   (uniform cluster centre, variance-controlled skew);
//! * [`zipf`] — the paper's synthetic *Zipf* matrices (skew parameter `a`);
//! * [`city`] — a seeded generative population model standing in for the
//!   proprietary Veraset data (DESIGN.md §5 documents the substitution),
//!   with presets for New York, Denver and Detroit density archetypes;
//! * [`trajectory`] — origin/stop/destination trip synthesis over a city;
//! * [`od`] — OD-matrix construction from trajectories at any granularity
//!   and stop count (§2.3).
//!
//! Everything is deterministic given a seed.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod city;
pub mod dist;
pub mod gaussian;
pub mod od;
pub mod parallel;
pub mod timeframe;
pub mod trajectory;
pub mod zipf;

pub use city::{City, CityModel, Hotspot};
pub use gaussian::GaussianConfig;
pub use od::OdMatrixBuilder;
pub use trajectory::{Trajectory, TrajectoryConfig};
pub use zipf::ZipfConfig;
