//! From-scratch samplers used by the synthetic-data generators.
//!
//! `rand_distr` is deliberately not a dependency (DESIGN.md §6): the
//! experiments need exactly two non-uniform laws — the normal (Box–Muller)
//! and the Zipf (finite inverse-CDF table) — and owning them keeps the
//! entire data path inside this workspace's test surface.

use rand::{Rng, RngCore};

/// Draws one standard-normal sample via the Box–Muller transform.
///
/// Uses the polar-free basic form: `z = √(−2 ln u₁) · cos(2π u₂)`. The
/// second variate of the pair is discarded — generation cost is irrelevant
/// next to matrix accumulation, and statelessness keeps call sites simple.
#[inline]
pub fn sample_standard_normal(rng: &mut dyn RngCore) -> f64 {
    let mut u1: f64 = rng.gen();
    while u1 <= f64::MIN_POSITIVE {
        u1 = rng.gen();
    }
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws one `N(mean, std²)` sample.
#[inline]
pub fn sample_normal(rng: &mut dyn RngCore, mean: f64, std: f64) -> f64 {
    debug_assert!(std >= 0.0, "negative standard deviation");
    mean + std * sample_standard_normal(rng)
}

/// A finite Zipf distribution over `{1, 2, …, n}` with exponent `a`:
/// `Pr[X = k] ∝ k^(−a)`.
///
/// Sampling is by inverse CDF over a precomputed table (`O(log n)` per
/// draw), exact for the finite support the paper uses (each dimension of
/// the frequency matrix).
///
/// ```
/// use dpod_data::dist::Zipf;
/// let z = Zipf::new(100, 2.0).unwrap();
/// let mut rng = rand::thread_rng();
/// let k = z.sample(&mut rng);
/// assert!((1..=100).contains(&k));
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities; `cdf[k-1] = Pr[X ≤ k]`.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the table for support `{1, …, n}` and exponent `a`.
    ///
    /// # Errors
    /// A descriptive message when `n == 0` or `a` is not finite/positive.
    pub fn new(n: usize, a: f64) -> Result<Self, String> {
        if n == 0 {
            return Err("Zipf support must be non-empty".into());
        }
        if !a.is_finite() || a <= 0.0 {
            return Err(format!("Zipf exponent must be finite and > 0, got {a}"));
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-a);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the right end.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Ok(Zipf { cdf })
    }

    /// Support size `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Probability `Pr[X = k]` for `k ∈ {1, …, n}`.
    pub fn pmf(&self, k: usize) -> f64 {
        assert!((1..=self.n()).contains(&k), "k out of support");
        if k == 1 {
            self.cdf[0]
        } else {
            self.cdf[k - 1] - self.cdf[k - 2]
        }
    }

    /// Draws one sample from `{1, …, n}`.
    #[inline]
    pub fn sample(&self, rng: &mut dyn RngCore) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first index with cdf > u, i.e. the
        // 0-based value; +1 shifts to the 1-based support.
        self.cdf.partition_point(|&c| c <= u) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng(11);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_normal(&mut r, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn normal_samples_are_finite() {
        let mut r = rng(2);
        for _ in 0..10_000 {
            assert!(sample_standard_normal(&mut r).is_finite());
        }
    }

    #[test]
    fn zipf_rejects_bad_params() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, 0.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
    }

    #[test]
    fn zipf_pmf_sums_to_one_and_decays() {
        let z = Zipf::new(50, 1.5).unwrap();
        let total: f64 = (1..=50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..50 {
            assert!(z.pmf(k) > z.pmf(k + 1), "pmf must be decreasing at {k}");
        }
    }

    #[test]
    fn zipf_samples_stay_in_support() {
        let z = Zipf::new(7, 2.5).unwrap();
        let mut r = rng(5);
        for _ in 0..10_000 {
            let k = z.sample(&mut r);
            assert!((1..=7).contains(&k));
        }
    }

    #[test]
    fn zipf_empirical_matches_pmf() {
        let z = Zipf::new(10, 1.2).unwrap();
        let mut r = rng(7);
        let n = 200_000;
        let mut counts = [0u32; 11];
        for _ in 0..n {
            counts[z.sample(&mut r)] += 1;
        }
        for (k, &count) in counts.iter().enumerate().skip(1) {
            let emp = count as f64 / n as f64;
            let exact = z.pmf(k);
            assert!(
                (emp - exact).abs() < 0.005,
                "k={k}: empirical {emp} vs exact {exact}"
            );
        }
    }

    #[test]
    fn higher_exponent_is_more_skewed() {
        let mild = Zipf::new(100, 1.1).unwrap();
        let steep = Zipf::new(100, 3.0).unwrap();
        assert!(steep.pmf(1) > mild.pmf(1));
        assert!(steep.pmf(100) < mild.pmf(100));
    }

    #[test]
    fn singleton_support_always_returns_one() {
        let z = Zipf::new(1, 2.0).unwrap();
        let mut r = rng(9);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut r), 1);
        }
    }
}
