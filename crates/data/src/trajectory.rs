//! Trajectory synthesis over a city model (§2.3, §6.1).
//!
//! The paper samples 300 000 real trajectories per city and records origin,
//! destination and intermediate points. Our generator reproduces the
//! structural properties the OD experiments exercise:
//!
//! * origins follow the population distribution;
//! * destinations follow a gravity rule (weight × distance decay), so the
//!   OD matrix has the strong corridor/diagonal structure of real mobility;
//! * intermediate stops lie near the origin–destination segment but are
//!   attracted to nearby hotspots (the "store / gym / clinic on the way"
//!   of the paper's motivating example).

use crate::city::{clamp_unit, CityModel};
use crate::dist::sample_normal;
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// One trip: origin, `num_stops` intermediate stops, destination — all in
/// the unit square.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    /// `[origin, stop₁, …, stop_k, destination]`; length `num_stops + 2`.
    pub points: Vec<[f64; 2]>,
}

impl Trajectory {
    /// Trip origin.
    pub fn origin(&self) -> [f64; 2] {
        self.points[0]
    }

    /// Trip destination.
    pub fn destination(&self) -> [f64; 2] {
        *self.points.last().expect("trajectory has >= 2 points")
    }

    /// The intermediate stops (possibly empty).
    pub fn stops(&self) -> &[[f64; 2]] {
        &self.points[1..self.points.len() - 1]
    }
}

/// Tuning knobs for trajectory synthesis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryConfig {
    /// Number of intermediate stops per trip (0 ⇒ conventional OD pairs).
    pub num_stops: usize,
    /// Gravity decay length for destination choice; smaller ⇒ shorter trips.
    pub gravity_decay: f64,
    /// Gaussian jitter (unit scale) applied to each stop.
    pub stop_jitter: f64,
    /// Blend factor in `[0,1]`: 0 ⇒ stops exactly on the O–D segment,
    /// 1 ⇒ stops at the nearest hotspot centre.
    pub hotspot_attraction: f64,
}

impl Default for TrajectoryConfig {
    fn default() -> Self {
        TrajectoryConfig {
            num_stops: 0,
            gravity_decay: 0.25,
            stop_jitter: 0.03,
            hotspot_attraction: 0.5,
        }
    }
}

impl TrajectoryConfig {
    /// A default configuration with `k` intermediate stops.
    pub fn with_stops(k: usize) -> Self {
        TrajectoryConfig {
            num_stops: k,
            ..TrajectoryConfig::default()
        }
    }

    /// Generates one trajectory over `city`.
    pub fn generate_one(&self, city: &CityModel, rng: &mut dyn RngCore) -> Trajectory {
        let origin = city.sample_point(rng);
        // Destination: gravity-chosen hotspot, or (rarely) pure background,
        // mirroring the background share of the population itself.
        let destination = if rng.gen::<f64>() < city.background {
            [rng.gen::<f64>(), rng.gen::<f64>()]
        } else {
            let h = city.pick_gravity(origin, self.gravity_decay, rng);
            [
                clamp_unit(sample_normal(rng, h.center[0], h.sigma)),
                clamp_unit(sample_normal(rng, h.center[1], h.sigma)),
            ]
        };
        let mut points = Vec::with_capacity(self.num_stops + 2);
        points.push(origin);
        for j in 1..=self.num_stops {
            let t = j as f64 / (self.num_stops + 1) as f64;
            let waypoint = [
                origin[0] + t * (destination[0] - origin[0]),
                origin[1] + t * (destination[1] - origin[1]),
            ];
            let anchor = city.nearest_hotspot(waypoint).center;
            let a = self.hotspot_attraction;
            let stop = [
                clamp_unit(sample_normal(
                    rng,
                    (1.0 - a) * waypoint[0] + a * anchor[0],
                    self.stop_jitter,
                )),
                clamp_unit(sample_normal(
                    rng,
                    (1.0 - a) * waypoint[1] + a * anchor[1],
                    self.stop_jitter,
                )),
            ];
            points.push(stop);
        }
        points.push(destination);
        Trajectory { points }
    }

    /// Generates `n` trajectories.
    pub fn generate(&self, city: &CityModel, n: usize, rng: &mut dyn RngCore) -> Vec<Trajectory> {
        (0..n).map(|_| self.generate_one(city, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::{dist, City};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn trajectory_has_expected_arity() {
        let city = City::Denver.model();
        let cfg = TrajectoryConfig::with_stops(2);
        let t = cfg.generate_one(&city, &mut rng(1));
        assert_eq!(t.points.len(), 4);
        assert_eq!(t.stops().len(), 2);
        assert_eq!(t.origin(), t.points[0]);
        assert_eq!(t.destination(), t.points[3]);
    }

    #[test]
    fn all_points_in_unit_square() {
        let city = City::NewYork.model();
        let cfg = TrajectoryConfig::with_stops(1);
        for t in cfg.generate(&city, 2_000, &mut rng(2)) {
            for [x, y] in t.points {
                assert!((0.0..1.0).contains(&x) && (0.0..1.0).contains(&y));
            }
        }
    }

    #[test]
    fn gravity_shortens_trips() {
        let city = City::NewYork.model();
        let near = TrajectoryConfig {
            gravity_decay: 0.05,
            ..TrajectoryConfig::default()
        };
        let far = TrajectoryConfig {
            gravity_decay: 5.0,
            ..TrajectoryConfig::default()
        };
        let mean_len = |cfg: &TrajectoryConfig, seed| {
            let trips = cfg.generate(&city, 3_000, &mut rng(seed));
            trips
                .iter()
                .map(|t| dist(t.origin(), t.destination()))
                .sum::<f64>()
                / trips.len() as f64
        };
        assert!(
            mean_len(&near, 3) < mean_len(&far, 3),
            "small decay must favour nearby destinations"
        );
    }

    #[test]
    fn stops_lie_near_the_od_corridor() {
        let city = City::Denver.model();
        let cfg = TrajectoryConfig {
            num_stops: 1,
            stop_jitter: 0.01,
            hotspot_attraction: 0.0,
            ..TrajectoryConfig::default()
        };
        let trips = cfg.generate(&city, 1_000, &mut rng(4));
        let mut mean_dev = 0.0;
        for t in &trips {
            let mid = [
                (t.origin()[0] + t.destination()[0]) / 2.0,
                (t.origin()[1] + t.destination()[1]) / 2.0,
            ];
            mean_dev += dist(t.stops()[0], mid);
        }
        mean_dev /= trips.len() as f64;
        assert!(
            mean_dev < 0.05,
            "with no attraction, stops hug the midpoint (mean dev {mean_dev})"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let city = City::Detroit.model();
        let cfg = TrajectoryConfig::with_stops(1);
        let a = cfg.generate(&city, 50, &mut rng(9));
        let b = cfg.generate(&city, 50, &mut rng(9));
        assert_eq!(a, b);
    }
}
