//! Origin–destination matrix construction (§2.3, §6.1).
//!
//! A trajectory with `k` intermediate stops becomes one count in a
//! `2(k+2)`-dimensional frequency matrix: the paper's OD matrix with
//! intermediate stops. Dimension order is
//! `(x_o, y_o, x_s1, y_s1, …, x_sk, y_sk, x_d, y_d)`.
//!
//! The paper discretizes each city at 1000×1000 in 2-D but necessarily
//! coarsens higher-dimensional matrices (1000⁴ cells would not fit in
//! memory); `cells_per_dim` controls that granularity (DESIGN.md §3.12).

use crate::city::to_cell;
use crate::trajectory::Trajectory;
use dpod_fmatrix::{DenseMatrix, Shape, SparseMatrix};
use serde::{Deserialize, Serialize};

/// Builds OD frequency matrices from trajectories.
///
/// ```
/// use dpod_data::{OdMatrixBuilder, Trajectory};
/// let trips = vec![Trajectory { points: vec![[0.1, 0.1], [0.9, 0.9]] }];
/// let b = OdMatrixBuilder::new(8);
/// let m = b.build_dense(&trips, 0).unwrap();
/// assert_eq!(m.ndim(), 4);
/// assert_eq!(m.total_u64(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OdMatrixBuilder {
    /// Grid cells per spatial axis (each stop contributes an x and a y
    /// dimension of this cardinality).
    pub cells_per_dim: usize,
}

impl OdMatrixBuilder {
    /// A builder with `cells_per_dim` cells per axis.
    ///
    /// # Panics
    /// Panics when `cells_per_dim == 0`.
    pub fn new(cells_per_dim: usize) -> Self {
        assert!(cells_per_dim > 0, "OD grid needs at least one cell");
        OdMatrixBuilder { cells_per_dim }
    }

    /// The matrix shape for trips with `num_stops` intermediate stops:
    /// `2(num_stops + 2)` dimensions of `cells_per_dim` cells each.
    pub fn shape(&self, num_stops: usize) -> Shape {
        Shape::cube(2 * (num_stops + 2), self.cells_per_dim).expect("valid OD shape")
    }

    /// Maps a trajectory to its OD-matrix cell coordinates.
    ///
    /// Returns `None` when the trajectory does not have exactly
    /// `num_stops + 2` points (mixed-arity streams are a caller bug in
    /// experiments, but tolerated as skips so partial data never panics).
    pub fn cell_of(&self, t: &Trajectory, num_stops: usize) -> Option<Vec<usize>> {
        if t.points.len() != num_stops + 2 {
            return None;
        }
        let mut coords = Vec::with_capacity(2 * t.points.len());
        for p in &t.points {
            coords.push(to_cell(p[0], self.cells_per_dim));
            coords.push(to_cell(p[1], self.cells_per_dim));
        }
        Some(coords)
    }

    /// Accumulates trajectories into a sparse OD matrix, skipping
    /// wrong-arity trips. Returns the matrix and the number skipped.
    pub fn build_sparse(&self, trips: &[Trajectory], num_stops: usize) -> (SparseMatrix, usize) {
        let mut m = SparseMatrix::new(self.shape(num_stops));
        let mut skipped = 0usize;
        for t in trips {
            match self.cell_of(t, num_stops) {
                Some(c) => m.add(&c, 1).expect("cell coords are in range"),
                None => skipped += 1,
            }
        }
        (m, skipped)
    }

    /// Accumulates trajectories into a dense OD matrix.
    ///
    /// # Errors
    /// A descriptive message when the dense domain would exceed
    /// `max_dense_cells` (guard against accidental 1000⁴ allocations).
    pub fn build_dense(
        &self,
        trips: &[Trajectory],
        num_stops: usize,
    ) -> Result<DenseMatrix<u64>, String> {
        const MAX_DENSE_CELLS: usize = 1 << 27; // 128 Mi cells ≈ 1 GiB of u64
        let shape = self.shape(num_stops);
        if shape.size() > MAX_DENSE_CELLS {
            return Err(format!(
                "dense OD matrix would need {} cells (> {MAX_DENSE_CELLS}); \
                 reduce cells_per_dim or use build_sparse",
                shape.size()
            ));
        }
        let (sparse, _skipped) = self.build_sparse(trips, num_stops);
        Ok(sparse.to_dense())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::City;
    use crate::trajectory::TrajectoryConfig;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn trip(points: &[[f64; 2]]) -> Trajectory {
        Trajectory {
            points: points.to_vec(),
        }
    }

    #[test]
    fn shape_matches_stop_count() {
        let b = OdMatrixBuilder::new(16);
        assert_eq!(b.shape(0).ndim(), 4);
        assert_eq!(b.shape(1).ndim(), 6);
        assert_eq!(b.shape(2).ndim(), 8);
        assert_eq!(b.shape(0).size(), 16usize.pow(4));
    }

    #[test]
    fn cell_of_maps_corners() {
        let b = OdMatrixBuilder::new(10);
        let t = trip(&[[0.0, 0.05], [0.95, 0.999]]);
        assert_eq!(b.cell_of(&t, 0).unwrap(), vec![0, 0, 9, 9]);
        assert_eq!(b.cell_of(&t, 1), None, "arity mismatch is skipped");
    }

    #[test]
    fn build_conserves_trip_count() {
        let city = City::Denver.model();
        let trips = TrajectoryConfig::with_stops(1).generate(&city, 500, &mut rng(1));
        let b = OdMatrixBuilder::new(8);
        let (sparse, skipped) = b.build_sparse(&trips, 1);
        assert_eq!(skipped, 0);
        assert_eq!(sparse.total_u64(), 500);
        let dense = b.build_dense(&trips, 1).unwrap();
        assert_eq!(dense.total_u64(), 500);
        assert_eq!(dense.ndim(), 6);
    }

    #[test]
    fn mixed_arity_is_skipped_not_fatal() {
        let trips = vec![
            trip(&[[0.1, 0.1], [0.2, 0.2]]),
            trip(&[[0.1, 0.1], [0.5, 0.5], [0.9, 0.9]]),
        ];
        let b = OdMatrixBuilder::new(4);
        let (m, skipped) = b.build_sparse(&trips, 0);
        assert_eq!(m.total_u64(), 1);
        assert_eq!(skipped, 1);
    }

    #[test]
    fn dense_guard_rejects_huge_domains() {
        let b = OdMatrixBuilder::new(1000);
        let err = b.build_dense(&[], 0).unwrap_err();
        assert!(err.contains("cells"), "{err}");
    }

    #[test]
    fn od_matrix_gets_sparser_with_stops() {
        let city = City::NewYork.model();
        let mut r = rng(2);
        let b = OdMatrixBuilder::new(6);
        let t0 = TrajectoryConfig::with_stops(0).generate(&city, 2_000, &mut r);
        let t1 = TrajectoryConfig::with_stops(1).generate(&city, 2_000, &mut r);
        let (m0, _) = b.build_sparse(&t0, 0);
        let (m1, _) = b.build_sparse(&t1, 1);
        assert!(
            m1.density() < m0.density(),
            "support share must shrink as dimensionality grows: {} vs {}",
            m1.density(),
            m0.density()
        );
    }
}
