//! Synthetic Gaussian frequency matrices (§6.1).
//!
//! The paper's recipe: pick one cluster centre uniformly at random in the
//! domain, then draw `num_points` points from an axis-aligned multivariate
//! normal around it; `var` controls skew (smaller variance ⇒ more
//! concentrated ⇒ more skewed matrix).

use crate::dist::sample_normal;
use dpod_fmatrix::{DenseMatrix, Shape};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// Configuration for a Gaussian synthetic frequency matrix.
///
/// ```
/// use dpod_data::GaussianConfig;
/// use dpod_fmatrix::Shape;
/// let cfg = GaussianConfig {
///     shape: Shape::new(vec![100, 100]).unwrap(),
///     num_points: 10_000,
///     var: 25.0,
/// };
/// let mut rng = rand::thread_rng();
/// let m = cfg.generate(&mut rng);
/// assert_eq!(m.total_u64(), 10_000);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaussianConfig {
    /// Domain of the frequency matrix (`F₁ × … × F_d`).
    pub shape: Shape,
    /// Number of data points to draw (the paper uses 1 million).
    pub num_points: usize,
    /// Per-dimension variance of the cluster. Lower ⇒ more skew.
    pub var: f64,
}

impl GaussianConfig {
    /// Samples the cluster centre and accumulates the points into a matrix.
    ///
    /// Points are drawn in `ℤ^d` (rounded normals, matching the paper's
    /// integer-lattice sampling) and clamped to the domain boundary — the
    /// same convention as [`DenseMatrix::from_points`].
    pub fn generate(&self, rng: &mut dyn RngCore) -> DenseMatrix<u64> {
        let d = self.shape.ndim();
        let std = self.var.sqrt();
        // cᵢ ~ Uniform over the domain of dimension i.
        let center: Vec<f64> = (0..d)
            .map(|i| rng.gen_range(0..self.shape.dim(i)) as f64)
            .collect();
        let mut m = DenseMatrix::<u64>::zeros(self.shape.clone());
        let mut coords = vec![0usize; d];
        for _ in 0..self.num_points {
            for (i, c) in coords.iter_mut().enumerate() {
                let x = sample_normal(rng, center[i], std).round();
                *c = clamp_to_dim(x, self.shape.dim(i));
            }
            let idx = m.shape().flat_index_unchecked(&coords);
            m.set_flat(idx, m.get_flat(idx).saturating_add(1));
        }
        m
    }
}

/// Clamps a real-valued coordinate to `[0, dim)` as a cell index.
#[inline]
fn clamp_to_dim(x: f64, dim: usize) -> usize {
    if x <= 0.0 {
        0
    } else {
        (x as usize).min(dim - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpod_fmatrix::entropy::matrix_entropy;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn cfg(dims: &[usize], n: usize, var: f64) -> GaussianConfig {
        GaussianConfig {
            shape: Shape::new(dims.to_vec()).unwrap(),
            num_points: n,
            var,
        }
    }

    #[test]
    fn conserves_point_count() {
        let m = cfg(&[50, 50], 5_000, 16.0).generate(&mut rng(1));
        assert_eq!(m.total_u64(), 5_000);
    }

    #[test]
    fn lower_variance_means_lower_entropy() {
        let sharp = cfg(&[64, 64], 20_000, 1.0).generate(&mut rng(2));
        let wide = cfg(&[64, 64], 20_000, 400.0).generate(&mut rng(2));
        assert!(
            matrix_entropy(&sharp) < matrix_entropy(&wide),
            "sharper cluster must concentrate mass"
        );
    }

    #[test]
    fn works_in_higher_dimensions() {
        let m = cfg(&[10, 10, 10, 10], 2_000, 4.0).generate(&mut rng(3));
        assert_eq!(m.ndim(), 4);
        assert_eq!(m.total_u64(), 2_000);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = cfg(&[30, 30], 1_000, 9.0).generate(&mut rng(42));
        let b = cfg(&[30, 30], 1_000, 9.0).generate(&mut rng(42));
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_variance_concentrates_on_single_cell() {
        let m = cfg(&[20, 20], 1_000, 1e-9).generate(&mut rng(4));
        assert_eq!(m.max_f64(), Some(1_000.0));
    }

    #[test]
    fn clamp_behaviour() {
        assert_eq!(clamp_to_dim(-3.5, 10), 0);
        assert_eq!(clamp_to_dim(4.2, 10), 4);
        assert_eq!(clamp_to_dim(99.0, 10), 9);
    }
}
