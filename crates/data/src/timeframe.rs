//! Time-framed trajectory matrices (§2.3, Fig. 2 of the paper).
//!
//! The paper's motivating representation assigns each trajectory point to
//! a *time frame* (morning → noon → evening) and — crucially — lets every
//! frame use its **own spatial granularity**: the CBD needs fine cells in
//! the noon frame but coarse ones in the morning frame, the theatre
//! district only matters in the evening frame, etc. Conventional OD
//! matrices cannot express that; [`FrameGrid`] can: frame `t` contributes
//! two dimensions of `cells[t]` cells each.

use crate::city::to_cell;
use crate::trajectory::Trajectory;
use dpod_fmatrix::{DenseMatrix, Shape, SparseMatrix};
use serde::{Deserialize, Serialize};

/// Per-frame spatial granularities for a time-framed frequency matrix.
///
/// ```
/// use dpod_data::{timeframe::FrameGrid, Trajectory};
/// // Morning coarse (4×4), noon fine (16×16), evening medium (8×8).
/// let g = FrameGrid::new(vec![4, 16, 8]).unwrap();
/// assert_eq!(g.shape().dims(), &[4, 4, 16, 16, 8, 8]);
/// let trip = Trajectory { points: vec![[0.1, 0.1], [0.52, 0.5], [0.9, 0.9]] };
/// let m = g.build_dense(&[trip]).unwrap();
/// assert_eq!(m.total_u64(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameGrid {
    cells: Vec<usize>,
}

impl FrameGrid {
    /// A grid with `cells[t]` cells per axis in frame `t`.
    ///
    /// # Errors
    /// A descriptive message when fewer than two frames are given or any
    /// frame has zero cells.
    pub fn new(cells: Vec<usize>) -> Result<Self, String> {
        if cells.len() < 2 {
            return Err("need at least two time frames".into());
        }
        if cells.contains(&0) {
            return Err("every frame needs at least one cell".into());
        }
        Ok(FrameGrid { cells })
    }

    /// A uniform-granularity grid (equivalent to the plain OD builder).
    ///
    /// # Errors
    /// Same contract as [`FrameGrid::new`].
    pub fn uniform(frames: usize, cells: usize) -> Result<Self, String> {
        FrameGrid::new(vec![cells; frames])
    }

    /// Number of time frames.
    pub fn frames(&self) -> usize {
        self.cells.len()
    }

    /// The matrix shape: `2·frames` dimensions, frame `t` contributing
    /// `(cells[t], cells[t])`.
    pub fn shape(&self) -> Shape {
        let dims: Vec<usize> = self.cells.iter().flat_map(|&c| [c, c]).collect();
        Shape::new(dims).expect("validated cells")
    }

    /// Maps a trajectory (one point per frame) to its cell coordinates;
    /// `None` for arity mismatches.
    pub fn cell_of(&self, t: &Trajectory) -> Option<Vec<usize>> {
        if t.points.len() != self.frames() {
            return None;
        }
        let mut coords = Vec::with_capacity(2 * self.frames());
        for (p, &c) in t.points.iter().zip(&self.cells) {
            coords.push(to_cell(p[0], c));
            coords.push(to_cell(p[1], c));
        }
        Some(coords)
    }

    /// Accumulates trajectories into a sparse matrix, returning the matrix
    /// and the number of skipped (wrong-arity) trips.
    pub fn build_sparse(&self, trips: &[Trajectory]) -> (SparseMatrix, usize) {
        let mut m = SparseMatrix::new(self.shape());
        let mut skipped = 0;
        for t in trips {
            match self.cell_of(t) {
                Some(c) => m.add(&c, 1).expect("cell in range"),
                None => skipped += 1,
            }
        }
        (m, skipped)
    }

    /// Dense variant with the same memory guard as the OD builder.
    ///
    /// # Errors
    /// A descriptive message when the dense domain would be too large.
    pub fn build_dense(&self, trips: &[Trajectory]) -> Result<DenseMatrix<u64>, String> {
        const MAX_DENSE_CELLS: usize = 1 << 27;
        let shape = self.shape();
        if shape.size() > MAX_DENSE_CELLS {
            return Err(format!(
                "dense frame matrix needs {} cells (> {MAX_DENSE_CELLS})",
                shape.size()
            ));
        }
        Ok(self.build_sparse(trips).0.to_dense())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::City;
    use crate::trajectory::TrajectoryConfig;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn rejects_degenerate_grids() {
        assert!(FrameGrid::new(vec![4]).is_err());
        assert!(FrameGrid::new(vec![4, 0]).is_err());
        assert!(FrameGrid::new(vec![]).is_err());
    }

    #[test]
    fn mixed_granularities_shape() {
        let g = FrameGrid::new(vec![2, 10, 5]).unwrap();
        assert_eq!(g.frames(), 3);
        assert_eq!(g.shape().dims(), &[2, 2, 10, 10, 5, 5]);
        assert_eq!(g.shape().size(), 4 * 100 * 25);
    }

    #[test]
    fn cell_mapping_uses_per_frame_resolution() {
        let g = FrameGrid::new(vec![2, 10]).unwrap();
        let t = Trajectory {
            points: vec![[0.6, 0.4], [0.6, 0.4]],
        };
        // Same physical point lands in different cells per frame.
        assert_eq!(g.cell_of(&t).unwrap(), vec![1, 0, 6, 4]);
        // Arity mismatch is skipped.
        let bad = Trajectory {
            points: vec![[0.5, 0.5]],
        };
        assert_eq!(g.cell_of(&bad), None);
    }

    #[test]
    fn build_conserves_trips_and_counts_skips() {
        let city = City::Denver.model();
        let mut trips = TrajectoryConfig::with_stops(1).generate(&city, 300, &mut rng(1));
        trips.push(Trajectory {
            points: vec![[0.5, 0.5], [0.6, 0.6]], // 2 frames, grid expects 3
        });
        let g = FrameGrid::new(vec![4, 8, 4]).unwrap();
        let (m, skipped) = g.build_sparse(&trips);
        assert_eq!(m.total_u64(), 300);
        assert_eq!(skipped, 1);
        let dense = g.build_dense(&trips).unwrap();
        assert_eq!(dense.total_u64(), 300);
        assert_eq!(dense.ndim(), 6);
    }

    #[test]
    fn uniform_matches_od_builder_semantics() {
        let city = City::NewYork.model();
        let trips = TrajectoryConfig::with_stops(0).generate(&city, 500, &mut rng(2));
        let frame = FrameGrid::uniform(2, 8)
            .unwrap()
            .build_dense(&trips)
            .unwrap();
        let od = crate::od::OdMatrixBuilder::new(8)
            .build_dense(&trips, 0)
            .unwrap();
        assert_eq!(frame, od);
    }

    #[test]
    fn dense_guard_rejects_huge_domains() {
        let g = FrameGrid::new(vec![1000, 1000]).unwrap();
        assert!(g.build_dense(&[]).is_err());
    }
}
