//! Multi-core dataset generation.
//!
//! Building a paper-scale city histogram draws a million points; machines
//! with cores to spare can split the work. Determinism is preserved by
//! construction: the workload is cut into a *fixed* number of chunks, each
//! with its own derived seed, so the result is identical for any thread
//! count (including 1) — only wall-clock changes.

use crate::city::CityModel;
use dpod_fmatrix::{DenseMatrix, Shape};
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Fixed chunk count; also the maximum useful parallelism.
pub const CHUNKS: usize = 32;

/// Parallel version of [`CityModel::population_matrix`].
///
/// `base_seed` fully determines the output (the sequential method's RNG
/// stream differs, so results match *this* function across thread counts,
/// not the sequential one). `threads == 0` is treated as 1.
pub fn population_matrix_parallel(
    city: &CityModel,
    grid: usize,
    n: usize,
    base_seed: u64,
    threads: usize,
) -> DenseMatrix<u64> {
    let shape = Shape::new(vec![grid, grid]).expect("valid grid");
    let threads = threads.clamp(1, CHUNKS);
    // Chunk sizes differ by at most one point.
    let sizes: Vec<usize> = (0..CHUNKS)
        .map(|i| n / CHUNKS + usize::from(i < n % CHUNKS))
        .collect();
    let next = AtomicUsize::new(0);
    let mut partials: Vec<Option<DenseMatrix<u64>>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let shape = shape.clone();
                let sizes = &sizes;
                let next = &next;
                scope.spawn(move || {
                    let mut local = DenseMatrix::<u64>::zeros(shape);
                    loop {
                        let chunk = next.fetch_add(1, Ordering::Relaxed);
                        if chunk >= CHUNKS {
                            return local;
                        }
                        let mut rng = rand::rngs::StdRng::seed_from_u64(
                            base_seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(chunk as u64 + 1)),
                        );
                        for _ in 0..sizes[chunk] {
                            let p = city.sample_point(&mut rng);
                            let coords = [
                                crate::city::to_cell(p[0], grid),
                                crate::city::to_cell(p[1], grid),
                            ];
                            let idx = local.shape().flat_index_unchecked(&coords);
                            local.set_flat(idx, local.get_flat(idx) + 1);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            partials.push(Some(h.join().expect("worker does not panic")));
        }
    });

    // Merge partials.
    let mut out = DenseMatrix::<u64>::zeros(shape);
    for p in partials.into_iter().flatten() {
        for (i, &v) in p.as_slice().iter().enumerate() {
            if v != 0 {
                out.set_flat(i, out.get_flat(i) + v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::City;

    #[test]
    fn conserves_mass() {
        let city = City::Denver.model();
        let m = population_matrix_parallel(&city, 64, 10_001, 7, 4);
        assert_eq!(m.total_u64(), 10_001);
    }

    #[test]
    fn independent_of_thread_count() {
        let city = City::NewYork.model();
        let a = population_matrix_parallel(&city, 48, 5_000, 9, 1);
        let b = population_matrix_parallel(&city, 48, 5_000, 9, 3);
        let c = population_matrix_parallel(&city, 48, 5_000, 9, 8);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn seed_changes_output() {
        let city = City::Detroit.model();
        let a = population_matrix_parallel(&city, 32, 2_000, 1, 2);
        let b = population_matrix_parallel(&city, 32, 2_000, 2, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_threads_treated_as_one() {
        let city = City::Denver.model();
        let m = population_matrix_parallel(&city, 16, 500, 3, 0);
        assert_eq!(m.total_u64(), 500);
    }
}
