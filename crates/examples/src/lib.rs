//! Carrier crate for the runnable examples in the repository-level
//! `examples/` directory. See each example's header comment for usage.
