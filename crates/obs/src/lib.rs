//! # dpod-obs
//!
//! Lock-free observability primitives for the serving stack: counters,
//! gauges, and HDR-style log-bucketed latency [`Histogram`]s, collected
//! in a [`Registry`] that renders the Prometheus text exposition format.
//!
//! The design targets the event-loop hot path (~10⁵ requests/sec):
//!
//! * [`Counter`] / [`Gauge`] / [`FloatGauge`] are single relaxed atomics;
//! * [`Histogram::record`] is one relaxed `fetch_add` into a
//!   power-of-2-bucketed count array plus one into a running sum, with
//!   the arrays *sharded per recording thread* so concurrent workers
//!   never contend on a cache line;
//! * reading is snapshot-based: [`Histogram::snapshot`] merges the
//!   shards into an immutable [`HistogramSnapshot`], and snapshots merge
//!   with each other — quantiles come out of the merged counts, so the
//!   same samples always produce the same quantile no matter how many
//!   threads recorded them or in which order (the property `dpod replay`
//!   leans on for deterministic p99 spreads).
//!
//! Bucket layout: values below 2⁴ get exact buckets; above that, each
//! power of two is split into 2⁴ sub-buckets, so any reported quantile
//! is an upper bound within 1/16 (≈6.3%) of the true sample. All
//! latency values are recorded and reported in **nanoseconds** — metric
//! names carry the unit (`…_nanoseconds`).
//!
//! Registration is the cold path (a mutex-guarded map keyed by metric
//! name + labels, deduplicating to the same handle); recording never
//! takes a lock.

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Sub-bucket resolution: each power of two splits into `2^SUB_BITS`
/// buckets, bounding quantile overestimation at `1/2^SUB_BITS`.
pub const SUB_BITS: u32 = 4;
/// Sub-buckets per power of two (`2^SUB_BITS`).
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` value range: one linear
/// group below `2^SUB_BITS` plus one group per remaining power of two.
pub const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_BUCKETS;
/// Number of independently updated shards per histogram. Each recording
/// thread is pinned to one shard (round-robin at first record), so up to
/// this many threads record with zero cache-line contention.
pub const NUM_SHARDS: usize = 8;

/// Maps a value to its bucket index (monotone, total over `u64`).
#[inline]
fn bucket_index(v: u64) -> usize {
    let msb = 63 - (v | 1).leading_zeros();
    if msb < SUB_BITS {
        v as usize
    } else {
        let shift = msb - SUB_BITS;
        (((msb - SUB_BITS + 1) as usize) << SUB_BITS) + ((v >> shift) as usize & (SUB_BUCKETS - 1))
    }
}

/// Largest value stored in bucket `i` — what quantiles report, making
/// every quantile an upper bound on the true sample.
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        i as u64
    } else {
        let shift = (i >> SUB_BITS) as u32 - 1;
        // OR, not add: the shifted base has zero low bits, and adding
        // would overflow at the top bucket (upper bound `u64::MAX`).
        (((SUB_BUCKETS + (i & (SUB_BUCKETS - 1))) as u64) << shift) | ((1u64 << shift) - 1)
    }
}

/// A monotonically increasing event count. `Clone` of the *handle* is
/// done via `Arc` from the [`Registry`]; the count itself only grows.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zero counter (standalone use; prefer
    /// [`Registry::counter`] for exported metrics).
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// An instantaneous integer measurement (queue depth, resident bytes).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A fresh zero gauge (standalone use; prefer [`Registry::gauge`]).
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Replaces the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Subtracts `n`, saturating at zero on racy underflow.
    #[inline]
    pub fn sub(&self, n: u64) {
        let _ = self
            .0
            .fetch_update(Relaxed, Relaxed, |v| Some(v.saturating_sub(n)));
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// An instantaneous floating-point measurement (hit rates, ε budgets);
/// stored as the `f64` bit pattern in an atomic.
#[derive(Debug, Default)]
pub struct FloatGauge(AtomicU64);

impl FloatGauge {
    /// A fresh zero gauge (standalone use; prefer
    /// [`Registry::float_gauge`]).
    pub fn new() -> Self {
        FloatGauge(AtomicU64::new(0))
    }

    /// Replaces the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Relaxed))
    }
}

/// One shard of a histogram: a full bucket array plus a running sum,
/// updated by the threads pinned to it.
struct Shard {
    counts: Box<[AtomicU64]>,
    sum: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            counts: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }
}

/// Round-robin shard assignment: each thread draws its shard index once.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

std::thread_local! {
    static MY_SHARD: usize = NEXT_SHARD.fetch_add(1, Relaxed) % NUM_SHARDS;
}

/// A concurrent, log-bucketed latency histogram.
///
/// [`record`](Self::record) is wait-free (two relaxed `fetch_add`s on a
/// thread-private shard); quantiles are read through
/// [`snapshot`](Self::snapshot). Values are unit-agnostic `u64`s — the
/// serving stack records nanoseconds everywhere.
pub struct Histogram {
    shards: Box<[Shard]>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count())
            .field("sum", &s.sum())
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh empty histogram (standalone use; prefer
    /// [`Registry::histogram`] for exported metrics).
    pub fn new() -> Self {
        Histogram {
            shards: (0..NUM_SHARDS).map(|_| Shard::new()).collect(),
        }
    }

    /// Records one sample. Wait-free; safe from any number of threads.
    #[inline]
    pub fn record(&self, v: u64) {
        let shard = &self.shards[MY_SHARD.with(|s| *s)];
        shard.counts[bucket_index(v)].fetch_add(1, Relaxed);
        shard.sum.fetch_add(v, Relaxed);
    }

    /// Merges all shards into an immutable point-in-time snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = vec![0u64; NUM_BUCKETS];
        let mut sum = 0u64;
        for shard in self.shards.iter() {
            for (acc, c) in counts.iter_mut().zip(shard.counts.iter()) {
                *acc += c.load(Relaxed);
            }
            sum = sum.wrapping_add(shard.sum.load(Relaxed));
        }
        let count = counts.iter().sum();
        HistogramSnapshot { counts, count, sum }
    }
}

/// An immutable histogram snapshot: mergeable, with deterministic
/// quantiles (a pure function of the bucket counts, independent of
/// recording order or thread count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no samples (identity element for
    /// [`merge`](Self::merge)).
    pub fn empty() -> Self {
        HistogramSnapshot {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean recorded value (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Records one sample directly into the snapshot — the
    /// single-threaded accumulation path (e.g. a load generator's
    /// per-connection tally). Produces exactly the bucket counts that
    /// [`Histogram::record`] + [`Histogram::snapshot`] would for the
    /// same samples, so both paths share quantile semantics.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
    }

    /// Folds another snapshot in (element-wise bucket addition).
    /// Commutative and associative, so merged quantiles do not depend on
    /// merge order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// The `q`-quantile (`q` in `[0, 1]`) as an upper bound on the true
    /// sample at that rank: the reported value is ≥ the sample and
    /// within a factor `1 + 1/2^SUB_BITS` of it. Returns `0` when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_upper(i);
            }
        }
        bucket_upper(NUM_BUCKETS - 1)
    }

    /// Upper bound of the highest occupied bucket (`0` when empty).
    pub fn max(&self) -> u64 {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map(bucket_upper)
            .unwrap_or(0)
    }
}

/// A started timing span: measures wall-clock nanoseconds from
/// construction, recording into a [`Histogram`] on
/// [`finish`](Self::finish) or stage-by-stage via [`lap`](Self::lap).
#[derive(Debug, Clone, Copy)]
pub struct Span {
    t0: Instant,
}

impl Span {
    /// Starts timing now.
    pub fn start() -> Self {
        Span { t0: Instant::now() }
    }

    /// Nanoseconds elapsed since start (saturating at `u64::MAX`).
    #[inline]
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Records the elapsed time into `h` and consumes the span.
    #[inline]
    pub fn finish(self, h: &Histogram) {
        h.record(self.elapsed_nanos());
    }

    /// Records the elapsed time into `h` and restarts the span — the
    /// idiom for timing consecutive stages (execute, then encode) with a
    /// single clock read per boundary.
    #[inline]
    pub fn lap(&mut self, h: &Histogram) {
        let now = Instant::now();
        h.record(u64::try_from((now - self.t0).as_nanos()).unwrap_or(u64::MAX));
        self.t0 = now;
    }
}

/// A process-local monotonic clock handing out nanosecond stamps, for
/// queue-wait accounting where the *enqueue* and *dequeue* sides are
/// different threads (stamps from one [`Clock`] are comparable).
#[derive(Debug, Clone)]
pub struct Clock {
    epoch: Instant,
}

impl Default for Clock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock {
    /// A clock whose epoch is now.
    pub fn new() -> Self {
        Clock {
            epoch: Instant::now(),
        }
    }

    /// Nanoseconds since this clock's epoch.
    #[inline]
    pub fn now_nanos(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// The handle kinds a registry entry can hold.
#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    FloatGauge(Arc<FloatGauge>),
    Histogram(Arc<Histogram>),
}

/// One labelled series within a family.
struct Series {
    labels: Vec<(String, String)>,
    metric: Metric,
}

/// One metric family: a name, a help string, and its labelled series.
struct Family {
    name: String,
    help: String,
    series: Vec<Series>,
}

/// A named collection of metrics, rendering the Prometheus text
/// exposition format (version 0.0.4).
///
/// Registration (`counter` / `gauge` / `float_gauge` / `histogram`)
/// is the mutex-guarded cold path and deduplicates: asking twice for the
/// same name + label set returns the same `Arc` handle. Histograms are
/// rendered as Prometheus *summaries* (p50/p90/p99/p999 `quantile`
/// series plus `_sum` and `_count`) so a scrape stays compact despite
/// the ~1000 internal buckets.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.families.lock().map(|f| f.len()).unwrap_or(0);
        f.debug_struct("Registry").field("families", &n).finish()
    }
}

/// Quantiles a histogram family exports when rendered.
const RENDERED_QUANTILES: [(f64, &str); 4] =
    [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (0.999, "0.999")];

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let mut fams = self.families.lock().expect("registry poisoned");
        let fam = match fams.iter_mut().find(|f| f.name == name) {
            Some(f) => f,
            None => {
                fams.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    series: Vec::new(),
                });
                fams.last_mut().expect("just pushed")
            }
        };
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        if let Some(s) = fam.series.iter().find(|s| s.labels == labels) {
            return s.metric.clone();
        }
        let metric = make();
        fam.series.push(Series {
            labels,
            metric: metric.clone(),
        });
        metric
    }

    /// Registers (or retrieves) a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.register(name, help, labels, || {
            Metric::Counter(Arc::new(Counter::new()))
        }) {
            Metric::Counter(c) => c,
            _ => panic!("metric {name} registered with a different type"),
        }
    }

    /// Registers (or retrieves) an integer gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.register(name, help, labels, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            _ => panic!("metric {name} registered with a different type"),
        }
    }

    /// Registers (or retrieves) a floating-point gauge series.
    pub fn float_gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<FloatGauge> {
        match self.register(name, help, labels, || {
            Metric::FloatGauge(Arc::new(FloatGauge::new()))
        }) {
            Metric::FloatGauge(g) => g,
            _ => panic!("metric {name} registered with a different type"),
        }
    }

    /// Registers (or retrieves) a histogram series.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.register(name, help, labels, || {
            Metric::Histogram(Arc::new(Histogram::new()))
        }) {
            Metric::Histogram(h) => h,
            _ => panic!("metric {name} registered with a different type"),
        }
    }

    /// Renders every registered series in the Prometheus text exposition
    /// format, in registration order (deterministic for a given
    /// registration sequence).
    pub fn render_prometheus(&self) -> String {
        let fams = self.families.lock().expect("registry poisoned");
        let mut out = String::new();
        for fam in fams.iter() {
            let kind = match fam.series.first().map(|s| &s.metric) {
                Some(Metric::Counter(_)) => "counter",
                Some(Metric::Gauge(_)) | Some(Metric::FloatGauge(_)) => "gauge",
                Some(Metric::Histogram(_)) => "summary",
                None => continue,
            };
            out.push_str(&format!("# HELP {} {}\n", fam.name, fam.help));
            out.push_str(&format!("# TYPE {} {}\n", fam.name, kind));
            for s in &fam.series {
                match &s.metric {
                    Metric::Counter(c) => {
                        render_line(&mut out, &fam.name, &s.labels, None, &c.get().to_string());
                    }
                    Metric::Gauge(g) => {
                        render_line(&mut out, &fam.name, &s.labels, None, &g.get().to_string());
                    }
                    Metric::FloatGauge(g) => {
                        render_line(&mut out, &fam.name, &s.labels, None, &format_f64(g.get()));
                    }
                    Metric::Histogram(h) => {
                        let snap = h.snapshot();
                        for (q, qlabel) in RENDERED_QUANTILES {
                            render_line(
                                &mut out,
                                &fam.name,
                                &s.labels,
                                Some(("quantile", qlabel)),
                                &snap.quantile(q).to_string(),
                            );
                        }
                        render_line(
                            &mut out,
                            &format!("{}_sum", fam.name),
                            &s.labels,
                            None,
                            &snap.sum().to_string(),
                        );
                        render_line(
                            &mut out,
                            &format!("{}_count", fam.name),
                            &s.labels,
                            None,
                            &snap.count().to_string(),
                        );
                    }
                }
            }
        }
        out
    }
}

/// Renders one `name{labels} value` exposition line.
fn render_line(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    extra: Option<(&str, &str)>,
    value: &str,
) {
    out.push_str(name);
    if !labels.is_empty() || extra.is_some() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{}=\"{}\"", k, escape_label(v)));
        }
        if let Some((k, v)) = extra {
            if !first {
                out.push(',');
            }
            out.push_str(&format!("{}=\"{}\"", k, escape_label(v)));
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Formats an `f64` the way Prometheus expects (plain decimal; `NaN`
/// spelled out).
fn format_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_total() {
        let mut last = 0usize;
        for &v in &[
            0u64,
            1,
            2,
            15,
            16,
            17,
            31,
            32,
            33,
            63,
            64,
            100,
            1000,
            10_000,
            1 << 20,
            (1 << 40) + 12345,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(i >= last, "bucket index not monotone at {v}");
            assert!(i < NUM_BUCKETS);
            last = i;
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_upper_bounds_its_values() {
        for v in (0u64..4096).chain([1 << 20, 1 << 33, u64::MAX / 3, u64::MAX]) {
            let i = bucket_index(v);
            let hi = bucket_upper(i);
            assert!(hi >= v, "upper bound {hi} < value {v}");
            // Relative error bound: within 1/16 above the true value.
            if v >= SUB_BUCKETS as u64 {
                assert!(
                    (hi - v) as f64 <= v as f64 / SUB_BUCKETS as f64,
                    "bucket error too large at {v}: upper {hi}"
                );
            }
            if i + 1 < NUM_BUCKETS {
                assert!(bucket_upper(i + 1) > hi);
            }
        }
        assert_eq!(bucket_upper(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn quantiles_bound_known_distributions() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 10_000);
        for (q, exact) in [(0.5, 5000u64), (0.9, 9000), (0.99, 9900), (0.999, 9990)] {
            let got = s.quantile(q);
            assert!(got >= exact, "q{q}: {got} < exact {exact}");
            assert!(
                got as f64 <= exact as f64 * (1.0 + 1.0 / SUB_BUCKETS as f64) + 1.0,
                "q{q}: {got} too far above exact {exact}"
            );
        }
        assert_eq!(s.quantile(0.0), s.quantile(1.0 / 10_000.0));
        assert!(s.max() >= 10_000);
    }

    #[test]
    fn concurrent_record_equals_single_thread_merge() {
        let shared = Arc::new(Histogram::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let h = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                for i in 0..5_000u64 {
                    h.record(t * 1_000 + i % 997);
                }
            }));
        }
        for j in handles {
            j.join().unwrap();
        }
        let reference = Histogram::new();
        for t in 0..8u64 {
            for i in 0..5_000u64 {
                reference.record(t * 1_000 + i % 997);
            }
        }
        assert_eq!(shared.snapshot(), reference.snapshot());
    }

    #[test]
    fn merge_is_commutative_and_identity_on_empty() {
        let a_src = Histogram::new();
        let b_src = Histogram::new();
        for v in [3u64, 99, 4096, 70_000] {
            a_src.record(v);
        }
        for v in [1u64, 99, 1 << 30] {
            b_src.record(v);
        }
        let (a, b) = (a_src.snapshot(), b_src.snapshot());
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        let mut with_empty = a.clone();
        with_empty.merge(&HistogramSnapshot::empty());
        assert_eq!(with_empty, a);
        assert_eq!(ab.count(), a.count() + b.count());
        assert_eq!(ab.sum(), a.sum() + b.sum());
    }

    #[test]
    fn registry_dedupes_and_renders() {
        let r = Registry::new();
        let c1 = r.counter("dpod_test_total", "test counter", &[("kind", "a")]);
        let c2 = r.counter("dpod_test_total", "test counter", &[("kind", "a")]);
        let c3 = r.counter("dpod_test_total", "test counter", &[("kind", "b")]);
        c1.add(3);
        c3.inc();
        assert_eq!(c2.get(), 3, "same name+labels must be the same handle");
        let g = r.gauge("dpod_depth", "queue depth", &[]);
        g.set(7);
        let f = r.float_gauge("dpod_eps", "epsilon", &[("release", "ci\"ty")]);
        f.set(0.5);
        let h = r.histogram("dpod_lat_nanoseconds", "latency", &[("stage", "exec")]);
        h.record(1000);
        h.record(2000);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE dpod_test_total counter"), "{text}");
        assert!(text.contains("dpod_test_total{kind=\"a\"} 3"), "{text}");
        assert!(text.contains("dpod_test_total{kind=\"b\"} 1"), "{text}");
        assert!(text.contains("dpod_depth 7"), "{text}");
        assert!(text.contains("release=\"ci\\\"ty\"} 0.5"), "{text}");
        assert!(
            text.contains("# TYPE dpod_lat_nanoseconds summary"),
            "{text}"
        );
        assert!(
            text.contains("dpod_lat_nanoseconds{stage=\"exec\",quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(
            text.contains("dpod_lat_nanoseconds_sum{stage=\"exec\"} 3000"),
            "{text}"
        );
        assert!(
            text.contains("dpod_lat_nanoseconds_count{stage=\"exec\"} 2"),
            "{text}"
        );
    }

    #[test]
    fn span_and_clock_measure_forward_time() {
        let clock = Clock::new();
        let t0 = clock.now_nanos();
        let h = Histogram::new();
        let mut span = Span::start();
        std::hint::black_box((0..1000).sum::<u64>());
        span.lap(&h);
        span.finish(&h);
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert!(clock.now_nanos() >= t0);
    }
}
