//! Property tests for the histogram: concurrent recording is equivalent
//! to single-threaded recording, snapshot merge is associative /
//! commutative / idempotent in the algebraic sense (merging the same
//! decomposition twice yields the same quantiles), and every reported
//! quantile upper-bounds the true sample within the documented 1/16
//! relative error.

use dpod_obs::{Histogram, HistogramSnapshot, SUB_BUCKETS};
use proptest::prelude::*;
use std::sync::Arc;

/// Records `samples` split across `threads` OS threads, returning the
/// merged snapshot.
fn record_concurrently(samples: &[u64], threads: usize) -> HistogramSnapshot {
    let h = Arc::new(Histogram::new());
    let chunk = samples.len().div_ceil(threads.max(1));
    let handles: Vec<_> = samples
        .chunks(chunk.max(1))
        .map(|c| {
            let h = Arc::clone(&h);
            let c = c.to_vec();
            std::thread::spawn(move || {
                for v in c {
                    h.record(v);
                }
            })
        })
        .collect();
    for j in handles {
        j.join().unwrap();
    }
    h.snapshot()
}

proptest! {
    #[test]
    fn concurrent_record_matches_single_thread(
        samples in prop::collection::vec(0u64..1_000_000_000, 0..400),
        threads in 1usize..6,
    ) {
        let single = Histogram::new();
        for &v in &samples {
            single.record(v);
        }
        prop_assert_eq!(record_concurrently(&samples, threads), single.snapshot());
    }

    #[test]
    fn merge_of_any_split_equals_whole(
        samples in prop::collection::vec(0u64..1_000_000_000, 1..300),
        cut in 0usize..300,
    ) {
        let cut = cut % samples.len();
        let whole = Histogram::new();
        for &v in &samples {
            whole.record(v);
        }
        let (left, right) = (Histogram::new(), Histogram::new());
        for &v in &samples[..cut] {
            left.record(v);
        }
        for &v in &samples[cut..] {
            right.record(v);
        }
        let (l, r) = (left.snapshot(), right.snapshot());
        let mut lr = l.clone();
        lr.merge(&r);
        let mut rl = r.clone();
        rl.merge(&l);
        // Commutative, and equal to recording everything in one place.
        prop_assert_eq!(&lr, &rl);
        prop_assert_eq!(&lr, &whole.snapshot());
        // Re-deriving from the same decomposition is stable (quantiles
        // are a pure function of the merged counts).
        let mut again = l.clone();
        again.merge(&r);
        prop_assert_eq!(again.quantile(0.99), lr.quantile(0.99));
        // Merging the empty snapshot changes nothing.
        let mut with_empty = lr.clone();
        with_empty.merge(&HistogramSnapshot::empty());
        prop_assert_eq!(with_empty, lr);
    }

    #[test]
    fn quantiles_upper_bound_true_samples(
        mut samples in prop::collection::vec(0u64..1_000_000_000, 1..400),
        q in 0.0f64..1.0,
    ) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let snap = h.snapshot();
        samples.sort_unstable();
        let rank = ((q * samples.len() as f64).ceil() as usize)
            .clamp(1, samples.len());
        let exact = samples[rank - 1];
        let got = snap.quantile(q);
        prop_assert!(got >= exact, "q{} reported {} below exact {}", q, got, exact);
        let bound = exact as f64 * (1.0 + 1.0 / SUB_BUCKETS as f64) + 1.0;
        prop_assert!(
            (got as f64) <= bound,
            "q{} reported {} above error bound {} (exact {})", q, got, bound, exact
        );
        prop_assert_eq!(snap.count(), samples.len() as u64);
        prop_assert!(snap.max() >= *samples.last().unwrap());
    }
}
