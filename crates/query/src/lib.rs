//! # dpod-query
//!
//! Range-query workloads and accuracy evaluation for sanitized frequency
//! matrices (§6.1 of the paper):
//!
//! * [`workload`] — generators for the paper's two query classes: random
//!   shape/size queries and fixed-coverage queries (1 %, 5 %, 10 % of each
//!   dimension's side);
//! * [`metrics`] — mean relative error (Eq. 3) with the standard
//!   denominator smoothing for empty queries, plus distribution summaries;
//! * [`eval`] — the evaluation loop: true answers from a prefix-sum table
//!   over the raw matrix, private answers from a [`SanitizedMatrix`];
//! * [`plan`] — the typed query algebra: a [`QueryPlan`] names a range
//!   sum, OD query, axis marginal, top-k ranking, total, or batch of
//!   those, and [`plan::execute`] answers it against a
//!   [`SanitizedMatrix`]. The serving layer carries the same vocabulary
//!   over both wire encodings.
//! * [`backend`] — the execution backends behind the algebra: the cold
//!   [`ScanBackend`] rescans the dense estimate per aggregate, the
//!   prepared [`ReleaseIndex`] memoizes marginal tables (each with its
//!   own prefix sums), resolution-pyramid levels (for
//!   [`QueryPlan::DrillDown`] routing), the descending cell order, and
//!   the total, so warm aggregate plans skip the rescan entirely —
//!   [`plan::execute_with`] answers bit-identically over either.
//!
//! [`SanitizedMatrix`]: dpod_core::SanitizedMatrix

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod backend;
pub mod eval;
pub mod metrics;
pub mod od;
pub mod plan;
pub mod workload;

pub use backend::{MarginalTable, PlanBackend, PyramidLevel, ReleaseIndex, ScanBackend};
pub use eval::{evaluate, EvalReport};
pub use metrics::{MreOptions, SummaryStats};
pub use od::{OdQuery, Region};
pub use plan::{
    merge_window_answers, Answer, EpochSelector, PlanError, QueryPlan, TopCell, WindowMerge,
};
pub use workload::QueryWorkload;
