//! Accuracy metrics: mean relative error (Eq. 3) and distribution
//! summaries.

use serde::{Deserialize, Serialize};

/// Options for relative-error computation.
///
/// Eq. (3) divides by the true count, which is zero for many random
/// queries over skewed data. Following the standard convention in this
/// literature (Qardaji et al.; Hay et al.'s DPBench), the denominator is
/// smoothed to `max(true, sanity_fraction · N)` where `N` is the dataset
/// total (DESIGN.md §3.9).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MreOptions {
    /// The smoothing fraction ρ; denominator is at least `ρ·N`.
    pub sanity_fraction: f64,
}

impl Default for MreOptions {
    fn default() -> Self {
        MreOptions {
            sanity_fraction: 0.001,
        }
    }
}

impl MreOptions {
    /// Relative error of one query, in percent (Eq. 3 with smoothing).
    ///
    /// `total` is the dataset size `N` used for the smoothing floor.
    pub fn relative_error(&self, truth: f64, estimate: f64, total: f64) -> f64 {
        let denom = truth.max(self.sanity_fraction * total).max(1.0);
        (estimate - truth).abs() / denom * 100.0
    }
}

/// Summary statistics over the per-query relative errors of a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SummaryStats {
    /// Number of queries evaluated.
    pub count: usize,
    /// Mean relative error (the paper's headline metric), percent.
    pub mean: f64,
    /// Median relative error, percent.
    pub median: f64,
    /// 95th-percentile relative error, percent.
    pub p95: f64,
    /// Maximum relative error, percent.
    pub max: f64,
}

impl SummaryStats {
    /// Computes the summary of a non-empty error sample.
    ///
    /// # Panics
    /// Panics on an empty sample (an experiment bug, not a data condition).
    pub fn from_errors(mut errors: Vec<f64>) -> Self {
        assert!(!errors.is_empty(), "cannot summarize zero queries");
        errors.sort_by(|a, b| a.partial_cmp(b).expect("finite errors"));
        let count = errors.len();
        let mean = errors.iter().sum::<f64>() / count as f64;
        SummaryStats {
            count,
            mean,
            median: percentile(&errors, 0.5),
            p95: percentile(&errors, 0.95),
            max: *errors.last().expect("non-empty"),
        }
    }
}

/// Linear-interpolated percentile of a sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&q));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_matches_eq3_when_truth_large() {
        let o = MreOptions::default();
        // truth 200 over N=1000: denominator is truth itself.
        assert!((o.relative_error(200.0, 150.0, 1_000.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn zero_truth_uses_smoothing_floor() {
        let o = MreOptions::default();
        // N = 1e6 ⇒ floor = 1000; error |50-0|/1000 = 5%.
        let e = o.relative_error(0.0, 50.0, 1e6);
        assert!((e - 5.0).abs() < 1e-12);
    }

    #[test]
    fn floor_never_below_one() {
        let o = MreOptions::default();
        // Tiny datasets: denominator clamps at 1, not at ρN = 0.01.
        let e = o.relative_error(0.0, 2.0, 10.0);
        assert!((e - 200.0).abs() < 1e-12);
    }

    #[test]
    fn summary_of_known_sample() {
        let s = SummaryStats::from_errors(vec![4.0, 1.0, 3.0, 2.0, 5.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert_eq!(s.max, 5.0);
        assert!((s.p95 - 4.8).abs() < 1e-12);
    }

    #[test]
    fn single_element_summary() {
        let s = SummaryStats::from_errors(vec![7.5]);
        assert_eq!(s.mean, 7.5);
        assert_eq!(s.median, 7.5);
        assert_eq!(s.p95, 7.5);
    }

    #[test]
    #[should_panic(expected = "zero queries")]
    fn empty_sample_panics() {
        let _ = SummaryStats::from_errors(vec![]);
    }
}
