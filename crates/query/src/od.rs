//! Analyst-friendly query builders for OD matrices.
//!
//! An OD matrix with `k` stops has `2(k+2)` dimensions laid out as
//! `(x_o, y_o, x_s1, y_s1, …, x_d, y_d)` (see `dpod-data`'s builder).
//! Hand-writing 8-dimensional boxes is error-prone; these builders compose
//! them from 2-D spatial regions, with unspecified legs defaulting to the
//! full extent — e.g. "trips from region A to region B, any stops".

use dpod_fmatrix::{AxisBox, FmError, Shape};
use serde::{Deserialize, Serialize};

/// A rectangular spatial region in cell coordinates (half-open).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// Inclusive lower corner `(x, y)`.
    pub lo: (usize, usize),
    /// Exclusive upper corner `(x, y)`.
    pub hi: (usize, usize),
}

impl Region {
    /// A region from corner cells.
    pub fn new(lo: (usize, usize), hi: (usize, usize)) -> Self {
        Region { lo, hi }
    }
}

/// Builder for OD-matrix range queries.
///
/// ```
/// use dpod_fmatrix::Shape;
/// use dpod_query::od::{OdQuery, Region};
/// let shape = Shape::cube(4, 16).unwrap(); // 4-D OD matrix
/// let q = OdQuery::new(&shape)
///     .unwrap()
///     .origin(Region::new((0, 0), (4, 4)))
///     .destination(Region::new((8, 8), (16, 16)))
///     .build()
///     .unwrap();
/// assert_eq!(q.lo(), &[0, 0, 8, 8]);
/// assert_eq!(q.hi(), &[4, 4, 16, 16]);
/// ```
#[derive(Debug, Clone)]
pub struct OdQuery {
    shape: Shape,
    /// One optional region per leg: origin, stops…, destination.
    legs: Vec<Option<Region>>,
}

impl OdQuery {
    /// Starts a query over an OD matrix of the given shape.
    ///
    /// # Errors
    /// [`FmError::DimensionMismatch`] unless the shape has an even number
    /// (≥ 4) of dimensions.
    pub fn new(shape: &Shape) -> Result<Self, FmError> {
        if !shape.ndim().is_multiple_of(2) || shape.ndim() < 4 {
            return Err(FmError::DimensionMismatch {
                expected: 4,
                got: shape.ndim(),
            });
        }
        Ok(OdQuery {
            shape: shape.clone(),
            legs: vec![None; shape.ndim() / 2],
        })
    }

    /// Number of legs (origin + stops + destination).
    pub fn num_legs(&self) -> usize {
        self.legs.len()
    }

    /// Constrains the origin leg.
    #[must_use]
    pub fn origin(mut self, r: Region) -> Self {
        self.legs[0] = Some(r);
        self
    }

    /// Constrains the destination leg.
    #[must_use]
    pub fn destination(mut self, r: Region) -> Self {
        *self.legs.last_mut().expect("at least two legs") = Some(r);
        self
    }

    /// Constrains intermediate stop `index` (0-based).
    ///
    /// # Panics
    /// Panics when `index` is not a valid stop index (legs − 2).
    #[must_use]
    pub fn stop(mut self, index: usize, r: Region) -> Self {
        let stops = self.legs.len() - 2;
        assert!(index < stops, "stop {index} of {stops}");
        self.legs[index + 1] = Some(r);
        self
    }

    /// Materializes the `2(k+2)`-dimensional box. Unconstrained legs span
    /// their full extent.
    ///
    /// # Errors
    /// [`FmError::BoxOutOfDomain`] when a region exceeds the matrix grid
    /// or is inverted.
    pub fn build(&self) -> Result<AxisBox, FmError> {
        let d = self.shape.ndim();
        let mut lo = Vec::with_capacity(d);
        let mut hi = Vec::with_capacity(d);
        for (leg, region) in self.legs.iter().enumerate() {
            let (dx, dy) = (self.shape.dim(2 * leg), self.shape.dim(2 * leg + 1));
            match region {
                None => {
                    lo.extend([0, 0]);
                    hi.extend([dx, dy]);
                }
                Some(r) => {
                    if r.hi.0 > dx || r.hi.1 > dy {
                        return Err(FmError::BoxOutOfDomain {
                            reason: format!("leg {leg} region {r:?} exceeds grid {dx}x{dy}"),
                        });
                    }
                    lo.extend([r.lo.0, r.lo.1]);
                    hi.extend([r.hi.0, r.hi.1]);
                }
            }
        }
        AxisBox::new(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_d_query_with_stop() {
        let shape = Shape::cube(6, 10).unwrap();
        let q = OdQuery::new(&shape)
            .unwrap()
            .origin(Region::new((0, 0), (5, 5)))
            .stop(0, Region::new((4, 4), (6, 6)))
            .build()
            .unwrap();
        assert_eq!(q.lo(), &[0, 0, 4, 4, 0, 0]);
        assert_eq!(q.hi(), &[5, 5, 6, 6, 10, 10]);
        assert_eq!(OdQuery::new(&shape).unwrap().num_legs(), 3);
    }

    #[test]
    fn unconstrained_query_is_full_domain() {
        let shape = Shape::cube(4, 8).unwrap();
        let q = OdQuery::new(&shape).unwrap().build().unwrap();
        assert_eq!(q, AxisBox::full(&shape));
    }

    #[test]
    fn rejects_odd_dimensionality() {
        assert!(OdQuery::new(&Shape::cube(3, 8).unwrap()).is_err());
        assert!(OdQuery::new(&Shape::cube(2, 8).unwrap()).is_err());
    }

    #[test]
    fn rejects_out_of_grid_regions() {
        let shape = Shape::cube(4, 8).unwrap();
        let err = OdQuery::new(&shape)
            .unwrap()
            .origin(Region::new((0, 0), (9, 4)))
            .build();
        assert!(err.is_err());
    }

    #[test]
    #[should_panic(expected = "stop 0 of 0")]
    fn stop_on_stopless_matrix_panics() {
        let shape = Shape::cube(4, 8).unwrap();
        let _ = OdQuery::new(&shape)
            .unwrap()
            .stop(0, Region::new((0, 0), (1, 1)));
    }

    #[test]
    fn inverted_region_is_rejected_at_build() {
        let shape = Shape::cube(4, 8).unwrap();
        let res = OdQuery::new(&shape)
            .unwrap()
            .origin(Region::new((5, 0), (2, 4)))
            .build();
        assert!(res.is_err());
    }
}
