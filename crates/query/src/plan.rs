//! The typed query algebra: one analyst vocabulary, every transport.
//!
//! A [`QueryPlan`] names *what* an analyst wants from a sanitized
//! release — a range sum, an OD query composed from spatial regions, an
//! axis marginal, the top-k cells, the total, or a batch of those — and
//! [`execute`] answers it against a
//! [`SanitizedMatrix`]. The serving layer
//! (`dpod-serve`) carries the same two enums over newline-delimited JSON
//! and the `DPRB` binary protocol, so an in-process caller, an NDJSON
//! script, and a binary client all speak — and answer — the identical
//! vocabulary, bit for bit.
//!
//! Execution is two-phase: the executor here owns validation, clamping,
//! answer-size budgeting and answer assembly, while the *numbers* come
//! from a [`PlanBackend`](crate::backend) — either the cold
//! [`ScanBackend`] that rescans the dense
//! estimate per aggregate ([`execute`]), or a prepared
//! [`ReleaseIndex`](crate::backend::ReleaseIndex) whose memoized
//! structures answer warm aggregates in `O(k)`/table-lookup time
//! ([`execute_with`]). Both produce bit-identical answers.
//!
//! Everything a plan can compute is DP post-processing of the released
//! estimate: range sums and totals read the prefix table, OD queries
//! lower to range sums through [`crate::od::OdQuery`], marginals sum the
//! estimate over dropped dimensions
//! ([`DenseMatrix::marginalize`](dpod_fmatrix::DenseMatrix::marginalize)),
//! and top-k ranks released cell estimates. No plan touches raw data.

use crate::backend::{PlanBackend, ScanBackend};
use crate::od::{OdQuery, Region};
use dpod_core::SanitizedMatrix;
use dpod_fmatrix::{AxisBox, Shape};
use serde::{Deserialize, Serialize};

/// Most cells a [`QueryPlan::TopK`] answer will carry, however large a
/// `k` the analyst asks for. Answers are clamped, not refused: `k`
/// beyond the matrix size is already clamped to the cell count, and this
/// cap keeps an adversarial `k` over a huge domain from materializing a
/// multi-gigabyte answer.
pub const MAX_TOP_K: usize = 1 << 20;

/// Most sub-plans one [`QueryPlan::Many`] may carry (plenty for real
/// batches; bounds allocation before execution starts).
pub const MAX_MANY_PLANS: usize = 1 << 16;

/// Most answer cells (f64 values / ranked cells) one [`execute`] call
/// may materialize **across the whole plan tree**. The per-variant caps
/// bound a single leaf, but a `Many` multiplies them — a few hundred
/// thousand `Marginal`/`TopK` sub-plans would otherwise assemble an
/// OOM-scale answer from one accepted request. The budget is charged
/// from cheap pre-execution estimates, so an over-budget plan is
/// refused before any work happens. 16M cells ≈ 128 MB of values —
/// generous for an analyst, survivable for a server.
pub const MAX_ANSWER_CELLS: usize = 1 << 24;

/// A planning or execution failure: a displayable message naming the
/// offending plan fragment. Never a panic — analyst input is untrusted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError(pub String);

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for PlanError {}

/// One typed analyst query against a sanitized release.
///
/// The plan is *domain-checked at execution time* against the release it
/// runs over; the same plan value can be serialized, shipped over either
/// wire encoding, and executed remotely with identical results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryPlan {
    /// Estimated count inside the half-open box `lo..hi` (Definition 3
    /// of the paper) — the vocabulary the legacy `Query` request spoke.
    Range {
        /// Inclusive lower corner (one entry per dimension).
        lo: Vec<usize>,
        /// Exclusive upper corner.
        hi: Vec<usize>,
    },
    /// An OD query composed from 2-D spatial regions, lowered through
    /// [`OdQuery`]: trips from `origin` to `destination` passing their
    /// indexed intermediate stops through the given regions.
    /// Unconstrained legs span their full extent.
    Od {
        /// Origin region, or any origin when `None`.
        origin: Option<Region>,
        /// `(stop index, region)` constraints on intermediate stops
        /// (0-based; a k-stop release has stops `0..k`).
        stops: Vec<(usize, Region)>,
        /// Destination region, or any destination when `None`.
        destination: Option<Region>,
    },
    /// The marginal over the dimensions in `keep` (strictly increasing),
    /// summing every other dimension out — e.g. `keep: [0, 1]` on a 4-D
    /// OD release is the origin density.
    Marginal {
        /// Dimensions to keep, strictly increasing.
        keep: Vec<usize>,
    },
    /// The `k` cells with the largest released estimates, descending
    /// (ties broken by ascending cell index, so answers are
    /// deterministic). `k` is clamped to the cell count and [`MAX_TOP_K`].
    TopK {
        /// How many cells to return.
        k: usize,
    },
    /// The estimated total count of the release.
    Total,
    /// Several plans answered in order against the same release (one
    /// name resolution, one cache access). `Many` does not nest.
    Many {
        /// The sub-plans, answered in order.
        plans: Vec<QueryPlan>,
    },
    /// One plan fanned across the epochs of a release *series* and
    /// merged: the continual-publication vocabulary ("last 7 days",
    /// "epoch 3 vs 4"). The inner plan runs unchanged against each
    /// selected epoch's release; [`merge_window_answers`] combines the
    /// per-epoch answers per the [`WindowMerge`] op. `Window` does not
    /// nest (inside itself or a [`QueryPlan::Many`]) and is answered by
    /// the serving layer, which owns the epoch catalog — the
    /// single-release executors here refuse it with a descriptive
    /// error.
    Window {
        /// Which epochs of the series to cover.
        select: EpochSelector,
        /// How the per-epoch answers combine.
        merge: WindowMerge,
        /// The plan to run against each selected epoch.
        plan: Box<QueryPlan>,
    },
    /// One plan routed to a coarse *pyramid level* of the release: the
    /// inner plan runs against the level-`level` table (every axis
    /// ceiling-halved `level` times, cells summed from their children —
    /// pure post-processing of the sanitized leaf, zero extra ε, see
    /// [`dpod_fmatrix::coarsen_to_level`]). Level 0 is the leaf itself.
    /// Only [`QueryPlan::Range`], [`QueryPlan::Marginal`] and
    /// [`QueryPlan::Total`] aggregate per-axis and may drill down;
    /// other plans are refused, as is nesting `DrillDown` inside
    /// itself, [`QueryPlan::Many`] or a [`QueryPlan::Window`]'s inner
    /// plan.
    DrillDown {
        /// The pyramid level to answer from (0 = the leaf release).
        level: u32,
        /// The plan to run against the coarse table; its coordinates
        /// (range corners, marginal keep-list) address the *coarse*
        /// domain.
        plan: Box<QueryPlan>,
    },
}

/// Which epochs of a release series a [`QueryPlan::Window`] covers.
///
/// Epoch ids are the monotonic `u64`s assigned at publish time; a
/// selector names ids, and the serving layer intersects it with the
/// epochs that are still live (retention may have expired older ones).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EpochSelector {
    /// Exactly one epoch (an error if it is not live).
    At {
        /// The epoch id.
        epoch: u64,
    },
    /// The `k` most recent live epochs (clamped to however many exist;
    /// `k = 0` is an error).
    LastK {
        /// How many trailing epochs.
        k: u64,
    },
    /// The inclusive id range `from..=to`, intersected with the live
    /// epochs (`from > to` is an error; an empty intersection too).
    Range {
        /// First epoch id, inclusive.
        from: u64,
        /// Last epoch id, inclusive.
        to: u64,
    },
}

/// How a [`QueryPlan::Window`]'s per-epoch answers combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WindowMerge {
    /// Fold the answers into one: values and marginals sum elementwise
    /// in ascending epoch order, top-k rankings merge as top-k over the
    /// union of surfaced cells (per-cell values summed across the
    /// epochs that surfaced them, re-ranked), `Many` answers merge
    /// positionally.
    Sum,
    /// Keep the per-epoch answers separate: an [`Answer::Epochs`]
    /// carrying one answer per selected epoch, ascending by id.
    PerEpoch,
}

impl QueryPlan {
    /// A stable lowercase label for the plan's shape (`"range"`, `"od"`,
    /// `"marginal"`, `"top_k"`, `"total"`, `"many"`), used as the
    /// `kind` tag on serving-side metrics — low-cardinality by
    /// construction (one label per variant, never per plan value).
    pub fn kind(&self) -> &'static str {
        match self {
            QueryPlan::Range { .. } => "range",
            QueryPlan::Od { .. } => "od",
            QueryPlan::Marginal { .. } => "marginal",
            QueryPlan::TopK { .. } => "top_k",
            QueryPlan::Total => "total",
            QueryPlan::Many { .. } => "many",
            QueryPlan::Window { .. } => "window",
            QueryPlan::DrillDown { .. } => "drill_down",
        }
    }

    /// A full-extent OD plan; chain [`Self::with_origin`] /
    /// [`Self::with_stop`] / [`Self::with_destination`] to constrain legs.
    pub fn od() -> Self {
        QueryPlan::Od {
            origin: None,
            stops: Vec::new(),
            destination: None,
        }
    }

    /// Constrains the origin leg of an [`QueryPlan::Od`] plan.
    ///
    /// # Panics
    /// When `self` is not an `Od` plan (a programming error, not analyst
    /// input — deserialized plans never route here).
    #[must_use]
    pub fn with_origin(mut self, r: Region) -> Self {
        let QueryPlan::Od { origin, .. } = &mut self else {
            panic!("with_origin on a non-Od plan");
        };
        *origin = Some(r);
        self
    }

    /// Constrains the destination leg of an [`QueryPlan::Od`] plan.
    ///
    /// # Panics
    /// As for [`Self::with_origin`].
    #[must_use]
    pub fn with_destination(mut self, r: Region) -> Self {
        let QueryPlan::Od { destination, .. } = &mut self else {
            panic!("with_destination on a non-Od plan");
        };
        *destination = Some(r);
        self
    }

    /// Constrains intermediate stop `index` of an [`QueryPlan::Od`] plan.
    ///
    /// # Panics
    /// As for [`Self::with_origin`].
    #[must_use]
    pub fn with_stop(mut self, index: usize, r: Region) -> Self {
        let QueryPlan::Od { stops, .. } = &mut self else {
            panic!("with_stop on a non-Od plan");
        };
        stops.push((index, r));
        self
    }
}

/// One cell of a [`Answer::TopK`] ranking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopCell {
    /// Cell coordinates, one entry per dimension.
    pub coords: Vec<usize>,
    /// The released estimate at that cell.
    pub value: f64,
}

/// The answer to one [`QueryPlan`], variant-matched to the plan shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Answer {
    /// A single estimated count ([`QueryPlan::Range`], [`QueryPlan::Od`],
    /// [`QueryPlan::Total`]).
    Value {
        /// The estimated count.
        value: f64,
    },
    /// A marginal table ([`QueryPlan::Marginal`]): the kept dimensions'
    /// cardinalities and the row-major flattened estimates.
    Marginal {
        /// Cardinality of each kept dimension, in `keep` order.
        dims: Vec<usize>,
        /// Row-major marginal estimates (`dims.iter().product()` values).
        values: Vec<f64>,
    },
    /// The top-k ranking ([`QueryPlan::TopK`]), descending by value.
    /// `dims` carries the release's domain so cell coordinates are
    /// interpretable (and so the wire encoding can pack cells as flat
    /// indices).
    TopK {
        /// Domain cardinalities of the queried release.
        dims: Vec<usize>,
        /// The ranked cells, descending by value, ties by cell index.
        cells: Vec<TopCell>,
    },
    /// Answers to [`QueryPlan::Many`], in plan order.
    Many {
        /// One answer per sub-plan.
        answers: Vec<Answer>,
    },
    /// Per-epoch answers to a [`QueryPlan::Window`] with
    /// [`WindowMerge::PerEpoch`]: one answer per selected epoch,
    /// ascending by id.
    Epochs {
        /// The selected epoch ids, ascending.
        epochs: Vec<u64>,
        /// One answer per epoch, in the same order.
        answers: Vec<Answer>,
    },
}

impl Answer {
    /// How many queries this answer represents (for serving-side
    /// counters): one per leaf, summed through [`Answer::Many`] and
    /// [`Answer::Epochs`].
    pub fn units(&self) -> u64 {
        match self {
            Answer::Many { answers } | Answer::Epochs { answers, .. } => {
                answers.iter().map(Answer::units).sum()
            }
            _ => 1,
        }
    }
}

/// Answers `plan` against `matrix` through the cold
/// [`ScanBackend`] (no preparation, every aggregate rescans the dense
/// estimate). Pure post-processing; never panics on analyst input —
/// every invalid plan is a descriptive [`PlanError`].
///
/// # Errors
/// [`PlanError`] for out-of-domain ranges, OD plans on non-OD domains or
/// with invalid stop indices, bad marginal keep-lists, nested
/// [`QueryPlan::Many`], and plan trees whose total answer size would
/// exceed [`MAX_ANSWER_CELLS`].
pub fn execute(matrix: &SanitizedMatrix, plan: &QueryPlan) -> Result<Answer, PlanError> {
    execute_with(&ScanBackend::new(matrix), plan)
}

/// Answers `plan` through any [`PlanBackend`] — the second phase of
/// prepare/execute. Pass a
/// [`ReleaseIndex`](crate::backend::ReleaseIndex) prepared for the
/// release to answer warm aggregates without rescans; answers are
/// bit-identical to [`execute`] whichever backend is used.
///
/// # Errors
/// As for [`execute`].
pub fn execute_with<B: PlanBackend>(backend: &B, plan: &QueryPlan) -> Result<Answer, PlanError> {
    match plan {
        QueryPlan::Many { plans } => {
            if plans.len() > MAX_MANY_PLANS {
                return Err(PlanError(format!(
                    "Many carries {} plans, limit {MAX_MANY_PLANS}",
                    plans.len()
                )));
            }
            // Refuse over-budget trees before any leaf runs: the
            // estimates are O(plan size) to compute, the answers are not.
            let matrix = backend.matrix();
            let mut budget = 0usize;
            for (i, sub) in plans.iter().enumerate() {
                if matches!(sub, QueryPlan::Many { .. }) {
                    return Err(PlanError(format!("plan {i}: Many plans cannot nest")));
                }
                if matches!(sub, QueryPlan::Window { .. }) {
                    return Err(PlanError(format!(
                        "plan {i}: Window plans select epochs at the top level \
                         and cannot ride inside Many"
                    )));
                }
                if matches!(sub, QueryPlan::DrillDown { .. }) {
                    return Err(PlanError(format!(
                        "plan {i}: DrillDown plans select a pyramid level at \
                         the top level and cannot ride inside Many"
                    )));
                }
                budget = budget.saturating_add(answer_cells_estimate(matrix, sub));
                if budget > MAX_ANSWER_CELLS {
                    return Err(PlanError(format!(
                        "plan would answer with more than {MAX_ANSWER_CELLS} cells \
                         (exceeded at sub-plan {i})"
                    )));
                }
            }
            let mut answers = Vec::with_capacity(plans.len());
            for sub in plans {
                answers.push(execute_leaf(backend, sub)?);
            }
            Ok(Answer::Many { answers })
        }
        leaf => execute_leaf(backend, leaf),
    }
}

/// Cheap upper bound on the cells a leaf's answer will carry. A single
/// leaf is inherently bounded (a marginal by the release's own size, a
/// top-k by [`MAX_TOP_K`]); the estimate exists so [`execute`] can
/// refuse a `Many` that would *multiply* those bounds. Invalid leaves
/// estimate low — they fail with their own descriptive error anyway.
fn answer_cells_estimate(matrix: &SanitizedMatrix, plan: &QueryPlan) -> usize {
    match plan {
        QueryPlan::Range { .. } | QueryPlan::Od { .. } | QueryPlan::Total => 1,
        // A ranked cell is a coords vector plus its value — charge
        // `ndim + 1` cells each, or a Many of max-k TopK leaves would
        // slip a multi-gigabyte answer under a budget calibrated for
        // bare f64 cells.
        QueryPlan::TopK { k } => (*k)
            .min(matrix.matrix().len())
            .min(MAX_TOP_K)
            .saturating_mul(matrix.matrix().ndim() + 1),
        QueryPlan::Marginal { keep } => {
            let shape = matrix.matrix().shape();
            keep.iter()
                .map(|&d| if d < shape.ndim() { shape.dim(d) } else { 1 })
                .fold(1usize, usize::saturating_mul)
        }
        // All three are rejected before estimation (none nests in Many).
        QueryPlan::Many { .. } | QueryPlan::Window { .. } | QueryPlan::DrillDown { .. } => 0,
    }
}

/// Merges one answer per epoch into a [`QueryPlan::Window`]'s final
/// answer. Pure, deterministic post-processing: `epochs` must be the
/// selected ids ascending, `answers` the matching per-epoch answers in
/// the same order, and the result is a pure function of those inputs —
/// which is what makes a memoized incremental merge bit-identical to a
/// from-scratch rescan.
///
/// [`WindowMerge::PerEpoch`] zips the inputs into [`Answer::Epochs`].
/// [`WindowMerge::Sum`] folds in ascending epoch order:
///
/// * values sum left to right;
/// * marginals sum elementwise (their `dims` must agree);
/// * top-k rankings become top-k over the union — each surfaced cell's
///   value is summed across the epochs that surfaced it (ascending), the
///   union re-ranked by value descending with ties broken by ascending
///   cell index, and truncated to the per-epoch ranking length;
/// * `Many` answers merge positionally (arities must agree).
///
/// # Errors
/// [`PlanError`] when the inputs are empty or mismatched (unequal
/// lengths, incompatible shapes across epochs).
pub fn merge_window_answers(
    merge: WindowMerge,
    epochs: &[u64],
    answers: Vec<Answer>,
) -> Result<Answer, PlanError> {
    if epochs.is_empty() {
        return Err(PlanError("window selected no epochs".to_string()));
    }
    if epochs.len() != answers.len() {
        return Err(PlanError(format!(
            "window merge got {} epochs but {} answers",
            epochs.len(),
            answers.len()
        )));
    }
    match merge {
        WindowMerge::PerEpoch => Ok(Answer::Epochs {
            epochs: epochs.to_vec(),
            answers,
        }),
        WindowMerge::Sum => {
            let mut merged: Option<Answer> = None;
            for answer in answers {
                merged = Some(match merged {
                    None => answer,
                    Some(acc) => sum_answers(acc, answer)?,
                });
            }
            Ok(merged.expect("answers checked non-empty"))
        }
    }
}

/// One step of the [`WindowMerge::Sum`] left fold: `acc` holds the
/// merge of the earlier epochs, `next` the following epoch's answer.
fn sum_answers(acc: Answer, next: Answer) -> Result<Answer, PlanError> {
    match (acc, next) {
        (Answer::Value { value: a }, Answer::Value { value: b }) => {
            Ok(Answer::Value { value: a + b })
        }
        (
            Answer::Marginal {
                dims: da,
                values: mut va,
            },
            Answer::Marginal {
                dims: db,
                values: vb,
            },
        ) => {
            if da != db {
                return Err(PlanError(format!(
                    "marginal dims differ across epochs: {da:?} vs {db:?}"
                )));
            }
            for (a, b) in va.iter_mut().zip(&vb) {
                *a += b;
            }
            Ok(Answer::Marginal {
                dims: da,
                values: va,
            })
        }
        (
            Answer::TopK {
                dims: da,
                cells: ca,
            },
            Answer::TopK {
                dims: db,
                cells: cb,
            },
        ) => {
            if da != db {
                return Err(PlanError(format!(
                    "top-k dims differ across epochs: {da:?} vs {db:?}"
                )));
            }
            // Union keyed by flat index (a BTreeMap, so accumulation
            // order is deterministic whatever order the inputs listed
            // cells in); later epochs fold onto earlier sums.
            let k = ca.len().max(cb.len());
            let mut union: std::collections::BTreeMap<usize, TopCell> = ca
                .into_iter()
                .map(|c| (flat_index(&da, &c.coords), c))
                .collect();
            for cell in cb {
                let idx = flat_index(&da, &cell.coords);
                match union.entry(idx) {
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        e.get_mut().value += cell.value;
                    }
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(cell);
                    }
                }
            }
            // Re-rank the union with the executor's own ordering (value
            // descending, ties by ascending cell index) and truncate
            // back to the ranking length.
            let mut ranked: Vec<(usize, TopCell)> = union.into_iter().collect();
            ranked.sort_by(|(ia, a), (ib, b)| b.value.total_cmp(&a.value).then_with(|| ia.cmp(ib)));
            ranked.truncate(k);
            Ok(Answer::TopK {
                dims: da,
                cells: ranked.into_iter().map(|(_, c)| c).collect(),
            })
        }
        (Answer::Many { answers: aa }, Answer::Many { answers: ab }) => {
            if aa.len() != ab.len() {
                return Err(PlanError(format!(
                    "Many arity differs across epochs: {} vs {}",
                    aa.len(),
                    ab.len()
                )));
            }
            let answers = aa
                .into_iter()
                .zip(ab)
                .map(|(a, b)| sum_answers(a, b))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Answer::Many { answers })
        }
        (a, b) => Err(PlanError(format!(
            "cannot sum mismatched answer shapes across epochs \
             ({} vs {})",
            answer_shape(&a),
            answer_shape(&b)
        ))),
    }
}

/// Stable label for an answer's shape, for merge error messages.
fn answer_shape(a: &Answer) -> &'static str {
    match a {
        Answer::Value { .. } => "value",
        Answer::Marginal { .. } => "marginal",
        Answer::TopK { .. } => "top_k",
        Answer::Many { .. } => "many",
        Answer::Epochs { .. } => "epochs",
    }
}

/// Row-major flat index of `coords` in a domain of `dims` (the tie-break
/// key top-k rankings sort by).
fn flat_index(dims: &[usize], coords: &[usize]) -> usize {
    dims.iter()
        .zip(coords)
        .fold(0usize, |acc, (&d, &c)| acc * d + c)
}

fn execute_leaf<B: PlanBackend>(backend: &B, plan: &QueryPlan) -> Result<Answer, PlanError> {
    let matrix = backend.matrix();
    match plan {
        QueryPlan::Range { lo, hi } => {
            let q = range_box(matrix.matrix().shape(), lo, hi)?;
            Ok(Answer::Value {
                value: matrix.range_sum(&q),
            })
        }
        QueryPlan::Od {
            origin,
            stops,
            destination,
        } => {
            let shape = matrix.matrix().shape();
            let mut od = OdQuery::new(shape).map_err(|_| {
                PlanError(format!(
                    "OD plans need an even-dimensional (≥ 4) domain, release has {:?}",
                    shape.dims()
                ))
            })?;
            let num_stops = od.num_legs() - 2;
            if let Some(r) = origin {
                od = od.origin(*r);
            }
            if let Some(r) = destination {
                od = od.destination(*r);
            }
            for &(index, r) in stops {
                if index >= num_stops {
                    return Err(PlanError(format!(
                        "stop index {index} out of range: release has {num_stops} stop leg(s)"
                    )));
                }
                od = od.stop(index, r);
            }
            let q = od
                .build()
                .map_err(|e| PlanError(format!("bad OD plan: {e}")))?;
            Ok(Answer::Value {
                value: matrix.range_sum(&q),
            })
        }
        QueryPlan::Marginal { keep } => {
            let (dims, values) = backend.marginal(keep)?;
            Ok(Answer::Marginal { dims, values })
        }
        QueryPlan::TopK { k } => {
            let m = matrix.matrix();
            let k = (*k).min(m.len()).min(MAX_TOP_K);
            Ok(Answer::TopK {
                dims: m.shape().dims().to_vec(),
                cells: backend.top_k(k),
            })
        }
        QueryPlan::Total => Ok(Answer::Value {
            value: backend.total(),
        }),
        QueryPlan::Window { .. } => Err(PlanError(
            "Window plans fan across a release series' epochs and are \
             answered by the serving layer; this release is a single \
             epoch"
                .to_string(),
        )),
        QueryPlan::DrillDown { level, plan } => {
            match plan.as_ref() {
                QueryPlan::Range { .. } | QueryPlan::Marginal { .. } | QueryPlan::Total => {}
                QueryPlan::DrillDown { .. } => {
                    return Err(PlanError("DrillDown plans cannot nest".to_string()));
                }
                other => {
                    return Err(PlanError(format!(
                        "DrillDown coarsens per-axis aggregates only (Range, \
                         Marginal, Total); {} plans cannot drill down",
                        other.kind()
                    )));
                }
            }
            // Level 0 *is* the leaf: route straight to the plain leaf
            // path, so `DrillDown { level: 0, plan }` ≡ `plan` bitwise
            // without materializing a leaf copy.
            if *level == 0 {
                return execute_leaf(backend, plan);
            }
            let lvl = backend.pyramid_level(*level)?;
            match plan.as_ref() {
                QueryPlan::Range { lo, hi } => {
                    let q = range_box(lvl.shape(), lo, hi)?;
                    Ok(Answer::Value {
                        value: lvl.box_sum(&q),
                    })
                }
                QueryPlan::Marginal { keep } => {
                    let (dims, values) = lvl.marginal(keep)?;
                    Ok(Answer::Marginal { dims, values })
                }
                QueryPlan::Total => Ok(Answer::Value { value: lvl.total() }),
                _ => unreachable!("inner kind validated above"),
            }
        }
        QueryPlan::Many { .. } => unreachable!("handled by execute_with"),
    }
}

/// Validates a `lo..hi` range against a domain — the leaf's, or a
/// pyramid level's (the same checks the legacy serving path applies).
fn range_box(shape: &Shape, lo: &[usize], hi: &[usize]) -> Result<AxisBox, PlanError> {
    let q =
        AxisBox::new(lo.to_vec(), hi.to_vec()).map_err(|e| PlanError(format!("bad range: {e}")))?;
    if q.ndim() != shape.ndim() || !q.fits(shape) {
        return Err(PlanError(format!(
            "range {:?}..{:?} does not fit domain {:?}",
            q.lo(),
            q.hi(),
            shape.dims()
        )));
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpod_fmatrix::{DenseMatrix, Shape};

    /// A deterministic 4-D "sanitized" matrix: cell value = flat index.
    fn od_matrix(side: usize) -> SanitizedMatrix {
        let shape = Shape::cube(4, side).unwrap();
        let values: Vec<f64> = (0..shape.size()).map(|i| i as f64).collect();
        let m = DenseMatrix::from_vec(shape, values).unwrap();
        SanitizedMatrix::from_entries("test", 1.0, m)
    }

    fn flat_2d(side: usize, values: Vec<f64>) -> SanitizedMatrix {
        let m = DenseMatrix::from_vec(Shape::new(vec![side, side]).unwrap(), values).unwrap();
        SanitizedMatrix::from_entries("test", 1.0, m)
    }

    #[test]
    fn range_matches_range_sum() {
        let m = od_matrix(4);
        let plan = QueryPlan::Range {
            lo: vec![0, 0, 0, 0],
            hi: vec![2, 2, 2, 2],
        };
        let Answer::Value { value } = execute(&m, &plan).unwrap() else {
            panic!("expected value");
        };
        let q = AxisBox::new(vec![0, 0, 0, 0], vec![2, 2, 2, 2]).unwrap();
        assert_eq!(value.to_bits(), m.range_sum(&q).to_bits());
    }

    #[test]
    fn range_rejects_bad_domains() {
        let m = od_matrix(4);
        for (lo, hi) in [
            (vec![0, 0], vec![2, 2]),             // wrong arity
            (vec![0, 0, 0, 0], vec![5, 2, 2, 2]), // out of domain
            (vec![3, 0, 0, 0], vec![1, 2, 2, 2]), // inverted
        ] {
            assert!(execute(&m, &QueryPlan::Range { lo, hi }).is_err());
        }
    }

    #[test]
    fn od_lowers_through_builder() {
        let m = od_matrix(4);
        let plan = QueryPlan::od()
            .with_origin(Region::new((0, 0), (2, 2)))
            .with_destination(Region::new((1, 1), (3, 3)));
        let Answer::Value { value } = execute(&m, &plan).unwrap() else {
            panic!("expected value");
        };
        let q = OdQuery::new(m.matrix().shape())
            .unwrap()
            .origin(Region::new((0, 0), (2, 2)))
            .destination(Region::new((1, 1), (3, 3)))
            .build()
            .unwrap();
        assert_eq!(value.to_bits(), m.range_sum(&q).to_bits());
    }

    #[test]
    fn od_rejects_bad_plans() {
        // Odd-dimensional release: no OD structure.
        let flat = flat_2d(2, vec![0.0, 1.0, 2.0, 3.0]);
        assert!(execute(&flat, &QueryPlan::od()).is_err());
        // Stop index out of range on a stopless (4-D) release.
        let m = od_matrix(4);
        let plan = QueryPlan::od().with_stop(0, Region::new((0, 0), (1, 1)));
        let err = execute(&m, &plan).unwrap_err();
        assert!(err.0.contains("stop index"), "{err}");
        // Region beyond the grid.
        let plan = QueryPlan::od().with_origin(Region::new((0, 0), (9, 9)));
        assert!(execute(&m, &plan).is_err());
    }

    #[test]
    fn marginal_matches_dense_marginalize() {
        let m = od_matrix(3);
        let plan = QueryPlan::Marginal { keep: vec![0, 1] };
        let Answer::Marginal { dims, values } = execute(&m, &plan).unwrap() else {
            panic!("expected marginal");
        };
        assert_eq!(dims, vec![3, 3]);
        let expect = m.matrix().marginalize(&[0, 1]).unwrap();
        assert_eq!(values, expect.as_slice());
        // Bad keep lists are errors, not panics.
        assert!(execute(&m, &QueryPlan::Marginal { keep: vec![] }).is_err());
        assert!(execute(&m, &QueryPlan::Marginal { keep: vec![1, 0] }).is_err());
        assert!(execute(&m, &QueryPlan::Marginal { keep: vec![7] }).is_err());
    }

    #[test]
    fn top_k_ranks_descending_with_deterministic_ties() {
        let m = flat_2d(2, vec![1.0, 7.0, 7.0, -2.0]);
        let Answer::TopK { dims, cells } = execute(&m, &QueryPlan::TopK { k: 3 }).unwrap() else {
            panic!("expected top-k");
        };
        assert_eq!(dims, vec![2, 2]);
        let got: Vec<(Vec<usize>, f64)> = cells.into_iter().map(|c| (c.coords, c.value)).collect();
        // Tie between cells 1 and 2 resolves by ascending index.
        assert_eq!(
            got,
            vec![(vec![0, 1], 7.0), (vec![1, 0], 7.0), (vec![0, 0], 1.0),]
        );
    }

    #[test]
    fn top_k_clamps_oversized_k() {
        let m = flat_2d(2, vec![1.0, 2.0, 3.0, 4.0]);
        let Answer::TopK { cells, .. } = execute(&m, &QueryPlan::TopK { k: usize::MAX }).unwrap()
        else {
            panic!("expected top-k");
        };
        assert_eq!(cells.len(), 4);
        let Answer::TopK { cells, .. } = execute(&m, &QueryPlan::TopK { k: 0 }).unwrap() else {
            panic!("expected top-k");
        };
        assert!(cells.is_empty());
    }

    #[test]
    fn total_and_many_compose() {
        let m = od_matrix(2);
        let plan = QueryPlan::Many {
            plans: vec![
                QueryPlan::Total,
                QueryPlan::TopK { k: 1 },
                QueryPlan::Marginal { keep: vec![0] },
            ],
        };
        let answer = execute(&m, &plan).unwrap();
        assert_eq!(answer.units(), 3);
        let Answer::Many { answers } = answer else {
            panic!("expected many");
        };
        assert_eq!(answers.len(), 3);
        let Answer::Value { value } = &answers[0] else {
            panic!("expected total value");
        };
        assert_eq!(value.to_bits(), m.total().to_bits());
    }

    #[test]
    fn many_refuses_over_budget_answer_trees() {
        // 6^4 = 1296 cells; a full-keep marginal answers with all of
        // them, so ~13k sub-plans blow the 2^24-cell aggregate budget.
        let shape = Shape::cube(4, 6).unwrap();
        let m = SanitizedMatrix::from_entries(
            "test",
            1.0,
            DenseMatrix::from_vec(shape.clone(), vec![0.0; shape.size()]).unwrap(),
        );
        let leaves = MAX_ANSWER_CELLS / shape.size() + 1;
        assert!(leaves < MAX_MANY_PLANS);
        let plan = QueryPlan::Many {
            plans: vec![
                QueryPlan::Marginal {
                    keep: vec![0, 1, 2, 3],
                };
                leaves
            ],
        };
        let err = execute(&m, &plan).unwrap_err();
        assert!(err.0.contains("cells"), "{err}");
        // TopK leaves charge their coords vectors too (k·(ndim+1)), so
        // far fewer of them hit the same budget.
        let topk_leaves = MAX_ANSWER_CELLS / (shape.size() * (shape.ndim() + 1)) + 1;
        let plan = QueryPlan::Many {
            plans: vec![QueryPlan::TopK { k: shape.size() }; topk_leaves],
        };
        let err = execute(&m, &plan).unwrap_err();
        assert!(err.0.contains("cells"), "{err}");
        // The same leaf count of scalar plans is fine.
        let plan = QueryPlan::Many {
            plans: vec![QueryPlan::Total; leaves],
        };
        assert!(execute(&m, &plan).is_ok());
    }

    #[test]
    fn many_does_not_nest() {
        let m = od_matrix(2);
        let plan = QueryPlan::Many {
            plans: vec![QueryPlan::Many { plans: vec![] }],
        };
        let err = execute(&m, &plan).unwrap_err();
        assert!(err.0.contains("nest"), "{err}");
    }

    #[test]
    fn drill_down_matches_coarsened_release_execution() {
        use dpod_fmatrix::coarsen_to_level;
        // Fractional, signed values so f64 addition order matters.
        let shape = Shape::cube(4, 4).unwrap();
        let values: Vec<f64> = (0..shape.size())
            .map(|i| ((i * 2_654_435_761) % 1_000) as f64 / 7.0 - 60.0)
            .collect();
        let m = SanitizedMatrix::from_entries(
            "test",
            1.0,
            DenseMatrix::from_vec(shape, values).unwrap(),
        );
        for level in 0..=2u32 {
            let side = 4usize >> level;
            let inners = vec![
                QueryPlan::Total,
                QueryPlan::Marginal { keep: vec![0, 1] },
                QueryPlan::Range {
                    lo: vec![0; 4],
                    hi: vec![side.max(1); 4],
                },
            ];
            for inner in inners {
                let routed = execute(
                    &m,
                    &QueryPlan::DrillDown {
                        level,
                        plan: Box::new(inner.clone()),
                    },
                )
                .unwrap();
                // The correctness contract: routing must be bit-identical
                // to coarsening the leaf and executing there.
                let coarse = SanitizedMatrix::from_entries(
                    "test",
                    1.0,
                    coarsen_to_level(m.matrix(), level).unwrap(),
                );
                let reference = execute(&coarse, &inner).unwrap();
                match (&routed, &reference) {
                    (Answer::Value { value: a }, Answer::Value { value: b }) => {
                        assert_eq!(a.to_bits(), b.to_bits(), "level {level} {inner:?}");
                    }
                    (
                        Answer::Marginal {
                            dims: da,
                            values: va,
                        },
                        Answer::Marginal {
                            dims: db,
                            values: vb,
                        },
                    ) => {
                        assert_eq!(da, db, "level {level}");
                        for (a, b) in va.iter().zip(vb) {
                            assert_eq!(a.to_bits(), b.to_bits(), "level {level}");
                        }
                    }
                    other => panic!("mismatched answer shapes: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn drill_down_validates_levels_and_inner_plans() {
        let m = od_matrix(4); // 4^4 domain, pyramid root = level 2
        let err = execute(
            &m,
            &QueryPlan::DrillDown {
                level: 3,
                plan: Box::new(QueryPlan::Total),
            },
        )
        .unwrap_err();
        assert!(err.0.contains("exceeds the pyramid root"), "{err}");
        // DrillDown cannot nest inside itself…
        let err = execute(
            &m,
            &QueryPlan::DrillDown {
                level: 1,
                plan: Box::new(QueryPlan::DrillDown {
                    level: 1,
                    plan: Box::new(QueryPlan::Total),
                }),
            },
        )
        .unwrap_err();
        assert!(err.0.contains("cannot nest"), "{err}");
        // …nor inside Many…
        let err = execute(
            &m,
            &QueryPlan::Many {
                plans: vec![QueryPlan::DrillDown {
                    level: 1,
                    plan: Box::new(QueryPlan::Total),
                }],
            },
        )
        .unwrap_err();
        assert!(err.0.contains("cannot ride inside Many"), "{err}");
        // …and only per-axis aggregates may drill down.
        for inner in [
            QueryPlan::TopK { k: 3 },
            QueryPlan::od(),
            QueryPlan::Many { plans: vec![] },
            QueryPlan::Window {
                select: EpochSelector::LastK { k: 1 },
                merge: WindowMerge::Sum,
                plan: Box::new(QueryPlan::Total),
            },
        ] {
            let err = execute(
                &m,
                &QueryPlan::DrillDown {
                    level: 1,
                    plan: Box::new(inner),
                },
            )
            .unwrap_err();
            assert!(err.0.contains("cannot drill down"), "{err}");
        }
        // Coarse coordinates are validated against the coarse domain:
        // [0,4) fits the leaf but not level 1 ([2,2,2,2]).
        let err = execute(
            &m,
            &QueryPlan::DrillDown {
                level: 1,
                plan: Box::new(QueryPlan::Range {
                    lo: vec![0; 4],
                    hi: vec![4; 4],
                }),
            },
        )
        .unwrap_err();
        assert!(err.0.contains("does not fit domain [2, 2, 2, 2]"), "{err}");
    }

    #[test]
    fn single_release_executors_refuse_window_plans() {
        let m = od_matrix(2);
        let window = QueryPlan::Window {
            select: EpochSelector::LastK { k: 3 },
            merge: WindowMerge::Sum,
            plan: Box::new(QueryPlan::Total),
        };
        let err = execute(&m, &window).unwrap_err();
        assert!(err.0.contains("serving layer"), "{err}");
        // …and Window cannot ride inside Many either.
        let err = execute(
            &m,
            &QueryPlan::Many {
                plans: vec![window],
            },
        )
        .unwrap_err();
        assert!(err.0.contains("Many"), "{err}");
    }

    #[test]
    fn window_sum_merge_folds_values_and_marginals() {
        let epochs = [3u64, 4, 5];
        let answers = vec![
            Answer::Value { value: 1.5 },
            Answer::Value { value: 2.25 },
            Answer::Value { value: -0.5 },
        ];
        let merged = merge_window_answers(WindowMerge::Sum, &epochs, answers).unwrap();
        let Answer::Value { value } = merged else {
            panic!("expected value");
        };
        // Left fold in ascending epoch order, bit for bit.
        assert_eq!(value.to_bits(), ((1.5 + 2.25) + -0.5f64).to_bits());

        let answers = vec![
            Answer::Marginal {
                dims: vec![2],
                values: vec![1.0, 2.0],
            },
            Answer::Marginal {
                dims: vec![2],
                values: vec![0.5, -1.0],
            },
        ];
        let merged = merge_window_answers(WindowMerge::Sum, &epochs[..2], answers).unwrap();
        assert_eq!(
            merged,
            Answer::Marginal {
                dims: vec![2],
                values: vec![1.5, 1.0],
            }
        );
    }

    #[test]
    fn window_sum_merge_ranks_top_k_over_the_union() {
        let a = Answer::TopK {
            dims: vec![2, 2],
            cells: vec![
                TopCell {
                    coords: vec![0, 0],
                    value: 5.0,
                },
                TopCell {
                    coords: vec![1, 1],
                    value: 3.0,
                },
            ],
        };
        let b = Answer::TopK {
            dims: vec![2, 2],
            cells: vec![
                TopCell {
                    coords: vec![0, 1],
                    value: 4.0,
                },
                TopCell {
                    coords: vec![1, 1],
                    value: 2.0,
                },
            ],
        };
        let merged = merge_window_answers(WindowMerge::Sum, &[1, 2], vec![a, b]).unwrap();
        let Answer::TopK { dims, cells } = merged else {
            panic!("expected top-k");
        };
        assert_eq!(dims, vec![2, 2]);
        // Cell (1,1) surfaced in both epochs (3+2=5), tying with (0,0)'s
        // 5.0 — the tie resolves by ascending cell index. (0,1)'s 4.0 is
        // squeezed out by the k=2 truncation.
        let got: Vec<(Vec<usize>, f64)> = cells.into_iter().map(|c| (c.coords, c.value)).collect();
        assert_eq!(got, vec![(vec![0, 0], 5.0), (vec![1, 1], 5.0)]);
    }

    #[test]
    fn window_merge_validates_inputs() {
        // Empty selection, length mismatch, shape mismatch, dims drift.
        assert!(merge_window_answers(WindowMerge::Sum, &[], vec![]).is_err());
        assert!(merge_window_answers(
            WindowMerge::Sum,
            &[1, 2],
            vec![Answer::Value { value: 0.0 }]
        )
        .is_err());
        assert!(merge_window_answers(
            WindowMerge::Sum,
            &[1, 2],
            vec![
                Answer::Value { value: 0.0 },
                Answer::Many { answers: vec![] }
            ]
        )
        .is_err());
        assert!(merge_window_answers(
            WindowMerge::Sum,
            &[1, 2],
            vec![
                Answer::Marginal {
                    dims: vec![2],
                    values: vec![0.0, 0.0]
                },
                Answer::Marginal {
                    dims: vec![3],
                    values: vec![0.0, 0.0, 0.0]
                }
            ]
        )
        .is_err());
        // Many answers merge positionally and recursively.
        let merged = merge_window_answers(
            WindowMerge::Sum,
            &[1, 2],
            vec![
                Answer::Many {
                    answers: vec![Answer::Value { value: 1.0 }],
                },
                Answer::Many {
                    answers: vec![Answer::Value { value: 2.0 }],
                },
            ],
        )
        .unwrap();
        assert_eq!(
            merged,
            Answer::Many {
                answers: vec![Answer::Value { value: 3.0 }]
            }
        );
    }

    #[test]
    fn window_per_epoch_merge_keeps_answers_apart() {
        let answers = vec![Answer::Value { value: 1.0 }, Answer::Value { value: 2.0 }];
        let merged = merge_window_answers(WindowMerge::PerEpoch, &[7, 9], answers.clone()).unwrap();
        assert_eq!(
            merged,
            Answer::Epochs {
                epochs: vec![7, 9],
                answers
            }
        );
        assert_eq!(merged.units(), 2);
    }

    #[test]
    fn plans_and_answers_round_trip_as_json() {
        let plans = vec![
            QueryPlan::Range {
                lo: vec![0, 0],
                hi: vec![4, 4],
            },
            QueryPlan::od()
                .with_origin(Region::new((0, 0), (2, 2)))
                .with_stop(0, Region::new((1, 1), (2, 2))),
            QueryPlan::Marginal { keep: vec![0, 2] },
            QueryPlan::TopK { k: 5 },
            QueryPlan::Total,
            QueryPlan::Many {
                plans: vec![QueryPlan::Total, QueryPlan::TopK { k: 1 }],
            },
            QueryPlan::Window {
                select: EpochSelector::LastK { k: 7 },
                merge: WindowMerge::Sum,
                plan: Box::new(QueryPlan::Total),
            },
            QueryPlan::Window {
                select: EpochSelector::Range { from: 2, to: 5 },
                merge: WindowMerge::PerEpoch,
                plan: Box::new(QueryPlan::Marginal { keep: vec![0, 1] }),
            },
            QueryPlan::Window {
                select: EpochSelector::At { epoch: 3 },
                merge: WindowMerge::Sum,
                plan: Box::new(QueryPlan::TopK { k: 4 }),
            },
            QueryPlan::DrillDown {
                level: 3,
                plan: Box::new(QueryPlan::Marginal { keep: vec![0, 1] }),
            },
        ];
        for plan in &plans {
            let line = serde_json::to_string(plan).unwrap();
            assert!(!line.contains('\n'), "{line}");
            let back: QueryPlan = serde_json::from_str(&line).unwrap();
            assert_eq!(&back, plan);
        }
        let answers = vec![
            Answer::Value { value: -1.25 },
            Answer::Marginal {
                dims: vec![2],
                values: vec![0.5, -0.5],
            },
            Answer::TopK {
                dims: vec![2, 2],
                cells: vec![TopCell {
                    coords: vec![1, 0],
                    value: 3.5,
                }],
            },
            Answer::Many {
                answers: vec![Answer::Value { value: 0.0 }],
            },
            Answer::Epochs {
                epochs: vec![4, 5, 6],
                answers: vec![
                    Answer::Value { value: 1.0 },
                    Answer::Value { value: 2.0 },
                    Answer::Value { value: 3.0 },
                ],
            },
        ];
        for answer in &answers {
            let line = serde_json::to_string(answer).unwrap();
            let back: Answer = serde_json::from_str(&line).unwrap();
            assert_eq!(&back, answer);
        }
    }
}
