//! Execution backends: *where* a [`QueryPlan`](crate::QueryPlan) gets
//! its numbers from.
//!
//! The executor in [`crate::plan`] is generic over a [`PlanBackend`] —
//! the small vocabulary of primitive lookups a plan decomposes into
//! (range sums, the total, one marginal table, the top-k ranking). Two
//! backends implement it:
//!
//! * [`ScanBackend`] — the cold path: every aggregate rescans the dense
//!   estimate of a [`SanitizedMatrix`]. Zero setup cost, `O(domain)`
//!   per marginal/top-k plan. This is what `plan::execute` uses.
//! * [`ReleaseIndex`] — the prepared path: a per-release structure that
//!   memoizes each aggregate the first time a plan touches it. Sanitized
//!   releases are static between publishes, so every derived statistic
//!   is pure DP post-processing that can be computed once: marginal
//!   tables are cached per kept-dim set (each with its own
//!   [`PrefixSum`], so *marginal range* sums are `O(2^d)` too), the
//!   descending cell order is sorted once (top-k is `O(k)` after first
//!   touch), and the total is cached. Warm plans run orders of
//!   magnitude faster than a rescan.
//!
//! Both backends are **bit-identical**: a marginal is memoized as the
//! very `Vec<f64>` the scan path computes, the cell order uses the same
//! `total_cmp`-then-index comparator, and the cached total is the same
//! prefix-table lookup — so `execute` and `execute_with(&index, …)`
//! agree to the last bit on every plan (a property test in `dpod-serve`
//! pins this across all three transports).

use crate::plan::{PlanError, TopCell};
use dpod_core::SanitizedMatrix;
use dpod_fmatrix::{coarsen_to_level, AxisBox, DenseMatrix, PrefixSum, Shape};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default cap on the bytes one [`ReleaseIndex`] may spend memoizing
/// marginal tables (64 MiB). Keep-sets past the cap are still answered
/// — computed per query, exactly like the scan path — just not cached.
pub const DEFAULT_MARGINAL_BUDGET: usize = 64 << 20;

/// The primitive lookups a [`QueryPlan`](crate::QueryPlan) decomposes
/// into. The executor ([`crate::plan::execute_with`]) owns all plan
/// validation, clamping and answer assembly; a backend only answers.
pub trait PlanBackend {
    /// The sanitized release this backend answers over (used by the
    /// executor for domain checks and range sums).
    fn matrix(&self) -> &SanitizedMatrix;

    /// The estimated total count of the release.
    fn total(&self) -> f64 {
        self.matrix().total()
    }

    /// The marginal over `keep` (strictly increasing, validated here):
    /// the kept dimensions' cardinalities and the row-major estimates.
    ///
    /// # Errors
    /// [`PlanError`] for an invalid keep-list.
    fn marginal(&self, keep: &[usize]) -> Result<(Vec<usize>, Vec<f64>), PlanError>;

    /// The `k` largest cells, descending by value with ties broken by
    /// ascending flat index. `k` arrives pre-clamped to the cell count
    /// (and the answer-size cap) by the executor.
    fn top_k(&self, k: usize) -> Vec<TopCell>;

    /// Pyramid level `level` of the release: every axis ceiling-halved
    /// `level` times, cells summed from their children
    /// ([`dpod_fmatrix::coarsen_to_level`]). The default builds the
    /// level from the dense estimate on every call (the cold path);
    /// [`ReleaseIndex`] memoizes levels under its byte budget. Level 0
    /// never routes here — the executor answers it from the leaf.
    ///
    /// # Errors
    /// [`PlanError`] when `level` exceeds the pyramid root.
    fn pyramid_level(&self, level: u32) -> Result<Arc<PyramidLevel>, PlanError> {
        PyramidLevel::build(self.matrix(), level)
    }
}

/// Ranks by value descending, flat index ascending on ties —
/// `total_cmp` keeps the order total (and answers deterministic) even
/// over negative noisy estimates. Both backends rank with exactly this
/// comparator, which is what makes their top-k answers identical.
#[inline]
fn rank_cmp(values: &[f64], a: usize, b: usize) -> std::cmp::Ordering {
    values[b].total_cmp(&values[a]).then(a.cmp(&b))
}

fn top_cells(m: &DenseMatrix<f64>, order: impl Iterator<Item = usize>) -> Vec<TopCell> {
    order
        .map(|idx| TopCell {
            coords: m.shape().coords(idx),
            value: m.as_slice()[idx],
        })
        .collect()
}

/// The cold backend: every aggregate rescans the dense estimate.
#[derive(Debug, Clone, Copy)]
pub struct ScanBackend<'a> {
    matrix: &'a SanitizedMatrix,
}

impl<'a> ScanBackend<'a> {
    /// A scan backend over `matrix`.
    pub fn new(matrix: &'a SanitizedMatrix) -> Self {
        ScanBackend { matrix }
    }
}

impl PlanBackend for ScanBackend<'_> {
    fn matrix(&self) -> &SanitizedMatrix {
        self.matrix
    }

    fn marginal(&self, keep: &[usize]) -> Result<(Vec<usize>, Vec<f64>), PlanError> {
        let table = self
            .matrix
            .matrix()
            .marginalize(keep)
            .map_err(|e| PlanError(format!("bad marginal: {e}")))?;
        Ok((table.shape().dims().to_vec(), table.into_vec()))
    }

    fn top_k(&self, k: usize) -> Vec<TopCell> {
        let m = self.matrix.matrix();
        let values = m.as_slice();
        // An O(n) selection bounds the sort to the k survivors.
        let mut order: Vec<usize> = (0..m.len()).collect();
        if k > 0 && k < order.len() {
            order.select_nth_unstable_by(k - 1, |&a, &b| rank_cmp(values, a, b));
        }
        order.truncate(k);
        order.sort_unstable_by(|&a, &b| rank_cmp(values, a, b));
        top_cells(m, order.into_iter())
    }
}

/// One memoized marginal: the projected estimates plus their own
/// summed-area table, so marginal *range* sums cost `O(2^d)` like any
/// other range query.
#[derive(Debug)]
pub struct MarginalTable {
    table: DenseMatrix<f64>,
    prefix: PrefixSum<f64>,
}

impl MarginalTable {
    /// Cardinality of each kept dimension, in keep-list order.
    pub fn dims(&self) -> &[usize] {
        self.table.shape().dims()
    }

    /// Row-major marginal estimates (`dims().iter().product()` values).
    pub fn values(&self) -> &[f64] {
        self.table.as_slice()
    }

    /// Estimated count inside the half-open box `q` *of the marginal
    /// domain* (coordinates in kept-dimension order), via the table's
    /// own prefix sums.
    ///
    /// # Errors
    /// [`PlanError`] when `q` does not fit the marginal domain.
    pub fn range_sum(&self, q: &AxisBox) -> Result<f64, PlanError> {
        if q.ndim() != self.table.ndim() || !q.fits(self.table.shape()) {
            return Err(PlanError(format!(
                "range {:?}..{:?} does not fit marginal domain {:?}",
                q.lo(),
                q.hi(),
                self.dims()
            )));
        }
        Ok(self.prefix.box_sum(q))
    }

    /// Estimated resident size: the values and their prefix table are
    /// each `len × 8` bytes.
    fn resident_bytes(&self) -> usize {
        self.table.len() * 16 + 64
    }
}

/// One resolution-pyramid level: the coarse table plus its own
/// summed-area table, so coarse range sums cost `O(2^d)` like any other
/// range query. Built deterministically from the sanitized leaf
/// (row-major child summation — see [`dpod_fmatrix::coarsen_once`]), so
/// every consumer that answers through a `PyramidLevel` gets answers
/// bit-identical to coarsening the leaf and executing there.
#[derive(Debug)]
pub struct PyramidLevel {
    level: u32,
    table: DenseMatrix<f64>,
    prefix: PrefixSum<f64>,
}

impl PyramidLevel {
    /// Builds level `level` from the release's dense estimate.
    fn build(matrix: &SanitizedMatrix, level: u32) -> Result<Arc<PyramidLevel>, PlanError> {
        let table = coarsen_to_level(matrix.matrix(), level)
            .map_err(|e| PlanError(format!("bad drill-down: {e}")))?;
        let prefix = PrefixSum::from_f64(&table);
        Ok(Arc::new(PyramidLevel {
            level,
            table,
            prefix,
        }))
    }

    /// Which pyramid level this table holds.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// The coarse domain.
    pub fn shape(&self) -> &Shape {
        self.table.shape()
    }

    /// Estimated count inside the half-open box `q` *of the coarse
    /// domain*, via the level's own prefix sums. The executor validates
    /// `q` against [`Self::shape`] before calling.
    pub fn box_sum(&self, q: &AxisBox) -> f64 {
        self.prefix.box_sum(q)
    }

    /// The marginal of the coarse table over `keep` — same contract
    /// (and error text) as the leaf marginal paths.
    ///
    /// # Errors
    /// [`PlanError`] for an invalid keep-list.
    pub fn marginal(&self, keep: &[usize]) -> Result<(Vec<usize>, Vec<f64>), PlanError> {
        let t = self
            .table
            .marginalize(keep)
            .map_err(|e| PlanError(format!("bad marginal: {e}")))?;
        Ok((t.shape().dims().to_vec(), t.into_vec()))
    }

    /// The level's total: the full-extent prefix lookup, exactly how
    /// the leaf total is computed from its own prefix table.
    pub fn total(&self) -> f64 {
        self.box_sum(&AxisBox::full(self.table.shape()))
    }

    /// Estimated resident size: the values and their prefix table are
    /// each `len × 8` bytes.
    fn resident_bytes(&self) -> usize {
        self.table.len() * 16 + 64
    }
}

/// The prepared backend: per-release memoization of every aggregate a
/// plan can ask for.
///
/// Built once per `(name, version)` by a serving layer (or directly by
/// an in-process analyst) and shared behind an [`Arc`]; all memoization
/// is interior and thread-safe, so concurrent queries warm it
/// cooperatively. The index never mutates the release — every structure
/// is derived from the sanitized estimate, i.e. DP post-processing.
///
/// Memory is self-accounted: [`Self::resident_bytes`] reports the
/// index's *own* footprint (the shared matrix is charged by whoever owns
/// it), growing as aggregates are first touched; marginal memoization
/// stops at the construction-time budget (further keep-sets are computed
/// per query, never refused).
#[derive(Debug)]
pub struct ReleaseIndex {
    matrix: Arc<SanitizedMatrix>,
    total: OnceLock<f64>,
    /// All cell indices, descending by released estimate (ties by
    /// ascending index), sorted once on first top-k touch. `u32` halves
    /// the footprint; domains past `u32::MAX` cells fall back to
    /// per-query selection.
    order: OnceLock<Vec<u32>>,
    marginals: Mutex<HashMap<Vec<usize>, Arc<MarginalTable>>>,
    pyramid: Mutex<HashMap<u32, Arc<PyramidLevel>>>,
    marginal_budget: usize,
    marginal_bytes: AtomicUsize,
    pyramid_bytes: AtomicUsize,
    pyramid_hits: AtomicU64,
    pyramid_misses: AtomicU64,
    pyramid_level_hits: Mutex<HashMap<u32, u64>>,
    order_bytes: AtomicUsize,
    build_nanos: AtomicU64,
}

impl ReleaseIndex {
    /// An index over `matrix` with the [`DEFAULT_MARGINAL_BUDGET`].
    pub fn new(matrix: Arc<SanitizedMatrix>) -> Self {
        Self::with_marginal_budget(matrix, DEFAULT_MARGINAL_BUDGET)
    }

    /// An index over `matrix` memoizing at most `marginal_budget` bytes
    /// of marginal tables (over-budget keep-sets are computed per query
    /// without caching).
    pub fn with_marginal_budget(matrix: Arc<SanitizedMatrix>, marginal_budget: usize) -> Self {
        ReleaseIndex {
            matrix,
            total: OnceLock::new(),
            order: OnceLock::new(),
            marginals: Mutex::new(HashMap::new()),
            pyramid: Mutex::new(HashMap::new()),
            marginal_budget,
            marginal_bytes: AtomicUsize::new(0),
            pyramid_bytes: AtomicUsize::new(0),
            pyramid_hits: AtomicU64::new(0),
            pyramid_misses: AtomicU64::new(0),
            pyramid_level_hits: Mutex::new(HashMap::new()),
            order_bytes: AtomicUsize::new(0),
            build_nanos: AtomicU64::new(0),
        }
    }

    /// Bytes currently spent across both memo pools (marginal tables
    /// and pyramid levels) — they share [`Self::with_marginal_budget`]'s
    /// single budget.
    fn memo_bytes(&self) -> usize {
        self.marginal_bytes.load(Ordering::Relaxed) + self.pyramid_bytes.load(Ordering::Relaxed)
    }

    /// The release this index serves.
    pub fn matrix(&self) -> &Arc<SanitizedMatrix> {
        &self.matrix
    }

    /// The memoized marginal over `keep`, built (and cached, budget
    /// permitting) on first touch.
    ///
    /// # Errors
    /// [`PlanError`] for an invalid keep-list — identical text to the
    /// scan path, so error answers are transport- and backend-invariant.
    pub fn marginal_table(&self, keep: &[usize]) -> Result<Arc<MarginalTable>, PlanError> {
        {
            let map = self.marginals.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(t) = map.get(keep) {
                return Ok(Arc::clone(t));
            }
        }
        // Build outside the lock: a slow first-touch marginal never
        // blocks queries that hit already-memoized keep-sets.
        let start = Instant::now();
        let table = self
            .matrix
            .matrix()
            .marginalize(keep)
            .map_err(|e| PlanError(format!("bad marginal: {e}")))?;
        let prefix = PrefixSum::from_f64(&table);
        let built = Arc::new(MarginalTable { table, prefix });
        self.build_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let cost = built.resident_bytes() + keep.len() * 8 + 48;
        let mut map = self.marginals.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(t) = map.get(keep) {
            return Ok(Arc::clone(t)); // a racing builder won; keep it
        }
        if self.memo_bytes() + cost <= self.marginal_budget {
            self.marginal_bytes.fetch_add(cost, Ordering::Relaxed);
            map.insert(keep.to_vec(), Arc::clone(&built));
        }
        Ok(built)
    }

    /// The memoized pyramid level `level`, built (and cached, budget
    /// permitting) on first touch. The shared memo budget covers
    /// marginal tables and pyramid levels together; an over-budget
    /// level is still answered, computed per query without caching.
    ///
    /// # Errors
    /// [`PlanError`] when `level` exceeds the pyramid root — identical
    /// text to the scan path, so error answers are transport- and
    /// backend-invariant.
    pub fn pyramid_table(&self, level: u32) -> Result<Arc<PyramidLevel>, PlanError> {
        {
            let map = self.pyramid.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(l) = map.get(&level) {
                self.pyramid_hits.fetch_add(1, Ordering::Relaxed);
                *self
                    .pyramid_level_hits
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .entry(level)
                    .or_insert(0) += 1;
                return Ok(Arc::clone(l));
            }
        }
        self.pyramid_misses.fetch_add(1, Ordering::Relaxed);
        // Build outside the lock, as for marginals: a slow first-touch
        // level never blocks queries hitting already-memoized levels.
        let start = Instant::now();
        let built = PyramidLevel::build(&self.matrix, level)?;
        self.build_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let cost = built.resident_bytes() + 48;
        let mut map = self.pyramid.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(l) = map.get(&level) {
            return Ok(Arc::clone(l)); // a racing builder won; keep it
        }
        if self.memo_bytes() + cost <= self.marginal_budget {
            self.pyramid_bytes.fetch_add(cost, Ordering::Relaxed);
            map.insert(level, Arc::clone(&built));
        }
        Ok(built)
    }

    /// Marginal range sum in one call: the memoized marginal over
    /// `keep`, then its `O(2^d)` prefix lookup for `q` (coordinates in
    /// kept-dimension order).
    ///
    /// # Errors
    /// [`PlanError`] for an invalid keep-list or an out-of-domain box.
    pub fn marginal_range_sum(&self, keep: &[usize], q: &AxisBox) -> Result<f64, PlanError> {
        self.marginal_table(keep)?.range_sum(q)
    }

    /// The descending cell order, sorted once on first touch. `None`
    /// when the domain exceeds `u32::MAX` cells (callers fall back to
    /// per-query selection).
    fn sorted_order(&self) -> Option<&[u32]> {
        let m = self.matrix.matrix();
        if m.len() > u32::MAX as usize {
            return None;
        }
        Some(self.order.get_or_init(|| {
            let start = Instant::now();
            let values = m.as_slice();
            let mut order: Vec<u32> = (0..m.len() as u32).collect();
            order.sort_unstable_by(|&a, &b| rank_cmp(values, a as usize, b as usize));
            self.order_bytes
                .fetch_add(order.len() * 4 + 24, Ordering::Relaxed);
            self.build_nanos
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            order
        }))
    }

    /// This index's own resident bytes (the shared release matrix is
    /// charged by its owner): memoized marginal tables and pyramid
    /// levels plus the sorted cell order, growing as aggregates are
    /// first touched.
    pub fn resident_bytes(&self) -> usize {
        256 + self.memo_bytes() + self.order_bytes.load(Ordering::Relaxed)
    }

    /// Cumulative wall-clock time this index has spent building
    /// memoized structures (marginal tables, the cell order).
    pub fn build_nanos(&self) -> u64 {
        self.build_nanos.load(Ordering::Relaxed)
    }

    /// Memoized marginal keep-sets currently resident.
    pub fn marginal_entries(&self) -> usize {
        self.marginals
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Memoized pyramid levels currently resident.
    pub fn pyramid_entries(&self) -> usize {
        self.pyramid.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Bytes spent on memoized pyramid levels.
    pub fn pyramid_bytes(&self) -> usize {
        self.pyramid_bytes.load(Ordering::Relaxed)
    }

    /// Drill-down plans answered from an already-memoized level.
    pub fn pyramid_hits(&self) -> u64 {
        self.pyramid_hits.load(Ordering::Relaxed)
    }

    /// Drill-down plans that had to build their level first.
    pub fn pyramid_misses(&self) -> u64 {
        self.pyramid_misses.load(Ordering::Relaxed)
    }

    /// Warm hits per pyramid level, ascending by level.
    pub fn pyramid_level_hits(&self) -> Vec<(u32, u64)> {
        let mut hits: Vec<(u32, u64)> = self
            .pyramid_level_hits
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(&l, &n)| (l, n))
            .collect();
        hits.sort_unstable();
        hits
    }
}

impl PlanBackend for ReleaseIndex {
    fn matrix(&self) -> &SanitizedMatrix {
        &self.matrix
    }

    fn total(&self) -> f64 {
        *self.total.get_or_init(|| self.matrix.total())
    }

    fn marginal(&self, keep: &[usize]) -> Result<(Vec<usize>, Vec<f64>), PlanError> {
        let t = self.marginal_table(keep)?;
        Ok((t.dims().to_vec(), t.values().to_vec()))
    }

    fn top_k(&self, k: usize) -> Vec<TopCell> {
        match self.sorted_order() {
            Some(order) => top_cells(
                self.matrix.matrix(),
                order.iter().take(k).map(|&i| i as usize),
            ),
            None => ScanBackend::new(&self.matrix).top_k(k),
        }
    }

    fn pyramid_level(&self, level: u32) -> Result<Arc<PyramidLevel>, PlanError> {
        self.pyramid_table(level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{execute, execute_with, Answer, QueryPlan};
    use dpod_fmatrix::Shape;

    /// A deterministic noisy-looking 4-D release: values mix sign and
    /// magnitude so ranking and marginal sums are non-trivial.
    fn release(side: usize) -> Arc<SanitizedMatrix> {
        let shape = Shape::cube(4, side).unwrap();
        let values: Vec<f64> = (0..shape.size())
            .map(|i| ((i * 2_654_435_761) % 1_000) as f64 / 7.0 - 60.0)
            .collect();
        let m = DenseMatrix::from_vec(shape, values).unwrap();
        Arc::new(SanitizedMatrix::from_entries("test", 1.0, m))
    }

    fn bits(a: &Answer) -> String {
        // Answer's PartialEq uses f64 ==; serialize value bits for the
        // stricter total_cmp-level identity the backends promise.
        fn walk(a: &Answer, out: &mut String) {
            match a {
                Answer::Value { value } => out.push_str(&format!("v{:016x};", value.to_bits())),
                Answer::Marginal { dims, values } => {
                    out.push_str(&format!("m{dims:?}:"));
                    for v in values {
                        out.push_str(&format!("{:016x},", v.to_bits()));
                    }
                }
                Answer::TopK { dims, cells } => {
                    out.push_str(&format!("t{dims:?}:"));
                    for c in cells {
                        out.push_str(&format!("{:?}={:016x},", c.coords, c.value.to_bits()));
                    }
                }
                Answer::Many { answers } => {
                    out.push('[');
                    for a in answers {
                        walk(a, out);
                    }
                    out.push(']');
                }
                Answer::Epochs { epochs, answers } => {
                    out.push_str(&format!("e{epochs:?}["));
                    for a in answers {
                        walk(a, out);
                    }
                    out.push(']');
                }
            }
        }
        let mut s = String::new();
        walk(a, &mut s);
        s
    }

    #[test]
    fn indexed_answers_bit_match_scan_on_every_variant() {
        let m = release(5);
        let index = ReleaseIndex::new(Arc::clone(&m));
        let plans = vec![
            QueryPlan::Total,
            QueryPlan::TopK { k: 0 },
            QueryPlan::TopK { k: 7 },
            QueryPlan::TopK { k: usize::MAX },
            QueryPlan::Marginal { keep: vec![0] },
            QueryPlan::Marginal { keep: vec![1, 3] },
            QueryPlan::Marginal {
                keep: vec![0, 1, 2, 3],
            },
            QueryPlan::Range {
                lo: vec![1, 0, 2, 0],
                hi: vec![4, 5, 3, 2],
            },
            QueryPlan::Many {
                plans: vec![
                    QueryPlan::Total,
                    QueryPlan::TopK { k: 3 },
                    QueryPlan::Marginal { keep: vec![2] },
                    QueryPlan::TopK { k: 3 }, // warm second touch
                    QueryPlan::Marginal { keep: vec![2] },
                ],
            },
            QueryPlan::DrillDown {
                level: 1,
                plan: Box::new(QueryPlan::Total),
            },
            QueryPlan::DrillDown {
                level: 2,
                plan: Box::new(QueryPlan::Marginal { keep: vec![0, 3] }),
            },
            QueryPlan::DrillDown {
                level: 1,
                plan: Box::new(QueryPlan::Range {
                    lo: vec![0, 1, 0, 0],
                    hi: vec![2, 3, 1, 2],
                }),
            },
            QueryPlan::DrillDown {
                level: 0,
                plan: Box::new(QueryPlan::Range {
                    lo: vec![1, 0, 2, 0],
                    hi: vec![4, 5, 3, 2],
                }),
            },
        ];
        for plan in &plans {
            let cold = execute(&m, plan).unwrap();
            let warm = execute_with(&index, plan).unwrap();
            assert_eq!(bits(&cold), bits(&warm), "plan {plan:?}");
            // And again, fully warm.
            let warm2 = execute_with(&index, plan).unwrap();
            assert_eq!(bits(&cold), bits(&warm2), "warm replay of {plan:?}");
        }
    }

    #[test]
    fn indexed_errors_match_scan_errors_verbatim() {
        let m = release(3);
        let index = ReleaseIndex::new(Arc::clone(&m));
        for plan in [
            QueryPlan::Marginal { keep: vec![] },
            QueryPlan::Marginal { keep: vec![3, 1] },
            QueryPlan::Marginal { keep: vec![9] },
            QueryPlan::Range {
                lo: vec![0],
                hi: vec![9],
            },
            QueryPlan::DrillDown {
                level: 99,
                plan: Box::new(QueryPlan::Total),
            },
            QueryPlan::DrillDown {
                level: 1,
                plan: Box::new(QueryPlan::Marginal { keep: vec![3, 1] }),
            },
        ] {
            let cold = execute(&m, &plan).unwrap_err();
            let warm = execute_with(&index, &plan).unwrap_err();
            assert_eq!(cold, warm, "plan {plan:?}");
        }
    }

    #[test]
    fn marginal_range_sums_match_the_base_release() {
        let m = release(4);
        let index = ReleaseIndex::new(Arc::clone(&m));
        // Sum over a box of the (0, 2) marginal == base-matrix range
        // with dropped dims at full extent.
        let q2 = AxisBox::new(vec![1, 0], vec![3, 2]).unwrap();
        let got = index.marginal_range_sum(&[0, 2], &q2).unwrap();
        let full = AxisBox::new(vec![1, 0, 0, 0], vec![3, 4, 2, 4]).unwrap();
        let expect = m.range_sum(&full);
        assert!(
            (got - expect).abs() < 1e-9 * (1.0 + expect.abs()),
            "marginal range {got} vs base {expect}"
        );
        // Out-of-domain and bad keep-lists are descriptive errors.
        let big = AxisBox::new(vec![0, 0], vec![9, 9]).unwrap();
        assert!(index.marginal_range_sum(&[0, 2], &big).is_err());
        assert!(index.marginal_range_sum(&[2, 0], &q2).is_err());
    }

    #[test]
    fn memoization_respects_the_marginal_budget() {
        let m = release(4);
        // Budget fits roughly one small marginal table, not all of them.
        let index = ReleaseIndex::with_marginal_budget(Arc::clone(&m), 600);
        index.marginal_table(&[0]).unwrap(); // 4 cells → memoized
        let after_first = index.resident_bytes();
        assert_eq!(index.marginal_entries(), 1);
        // A full-keep marginal (256 cells ≈ 4 KiB) blows the budget: it
        // is answered but not cached, and bytes do not move.
        let uncached = index.marginal_table(&[0, 1, 2, 3]).unwrap();
        assert_eq!(
            uncached.values(),
            m.matrix().as_slice(),
            "identity marginal must still answer correctly"
        );
        assert_eq!(index.marginal_entries(), 1);
        assert_eq!(index.resident_bytes(), after_first);
        // The memoized keep-set still answers warm (same Arc).
        let again = index.marginal_table(&[0]).unwrap();
        assert_eq!(index.marginal_entries(), 1);
        assert!(Arc::ptr_eq(&again, &index.marginal_table(&[0]).unwrap()));
    }

    #[test]
    fn pyramid_levels_memoize_with_hit_and_miss_counters() {
        let m = release(5); // 5^4, pyramid root = level 3
        let index = ReleaseIndex::new(Arc::clone(&m));
        assert_eq!(index.pyramid_entries(), 0);
        let base = index.resident_bytes();

        let plan = QueryPlan::DrillDown {
            level: 2,
            plan: Box::new(QueryPlan::Total),
        };
        execute_with(&index, &plan).unwrap();
        assert_eq!((index.pyramid_misses(), index.pyramid_hits()), (1, 0));
        assert_eq!(index.pyramid_entries(), 1);
        assert!(index.pyramid_bytes() > 0);
        assert!(index.resident_bytes() > base, "levels must be charged");
        assert_eq!(index.pyramid_level_hits(), vec![]);

        // Warm replays hit the memo; a different level misses again.
        execute_with(&index, &plan).unwrap();
        execute_with(&index, &plan).unwrap();
        assert_eq!((index.pyramid_misses(), index.pyramid_hits()), (1, 2));
        assert_eq!(index.pyramid_level_hits(), vec![(2, 2)]);
        let other = QueryPlan::DrillDown {
            level: 1,
            plan: Box::new(QueryPlan::Marginal { keep: vec![0] }),
        };
        execute_with(&index, &other).unwrap();
        execute_with(&index, &other).unwrap();
        assert_eq!((index.pyramid_misses(), index.pyramid_hits()), (2, 3));
        assert_eq!(index.pyramid_level_hits(), vec![(1, 1), (2, 2)]);
        assert_eq!(index.pyramid_entries(), 2);

        // Level 0 routes to the leaf — it never touches the memo.
        execute_with(
            &index,
            &QueryPlan::DrillDown {
                level: 0,
                plan: Box::new(QueryPlan::Total),
            },
        )
        .unwrap();
        assert_eq!((index.pyramid_misses(), index.pyramid_hits()), (2, 3));

        // Invalid levels are errors, not memo entries.
        assert!(index.pyramid_table(99).is_err());
        assert_eq!(index.pyramid_entries(), 2);
    }

    #[test]
    fn pyramid_memoization_shares_the_marginal_budget() {
        let m = release(4);
        // Fits the level-2 table (1 cell) but not level 1 (16 cells:
        // 16·16 + 64 + 48 = 368 > 200).
        let index = ReleaseIndex::with_marginal_budget(Arc::clone(&m), 200);
        let coarse = index.pyramid_table(2).unwrap();
        assert_eq!(index.pyramid_entries(), 1);
        let after_first = index.resident_bytes();
        // An over-budget level still answers, uncached and correct.
        let fine = index.pyramid_table(1).unwrap();
        assert_eq!(fine.shape().dims(), &[2, 2, 2, 2]);
        assert_eq!(index.pyramid_entries(), 1);
        assert_eq!(index.resident_bytes(), after_first);
        // The cached level answers warm (same Arc).
        assert!(Arc::ptr_eq(&coarse, &index.pyramid_table(2).unwrap()));
        // And pyramid bytes count against marginal memoization too: the
        // remaining headroom refuses a marginal the budget would
        // otherwise have taken.
        index.marginal_table(&[0, 1]).unwrap(); // 16 cells, same cost
        assert_eq!(index.marginal_entries(), 0);
    }

    #[test]
    fn whole_grid_marginal_at_1024_routes_to_the_coarse_level() {
        // The acceptance scenario: a coarse marginal on a 1024² release
        // executes against the level-4 table (64² = 4096 cells, not the
        // 2^20-cell leaf), verified by the pyramid hit counters — and
        // stays bit-identical to coarsening the leaf and executing there.
        let shape = Shape::new(vec![1024, 1024]).unwrap();
        let values: Vec<f64> = (0..shape.size())
            .map(|i| ((i * 2_654_435_761) % 1_000) as f64 / 7.0 - 60.0)
            .collect();
        let m = Arc::new(SanitizedMatrix::from_entries(
            "test",
            1.0,
            DenseMatrix::from_vec(shape, values).unwrap(),
        ));
        let index = ReleaseIndex::new(Arc::clone(&m));
        let plan = QueryPlan::DrillDown {
            level: 4,
            plan: Box::new(QueryPlan::Marginal { keep: vec![0, 1] }),
        };
        let first = execute_with(&index, &plan).unwrap();
        let warm = execute_with(&index, &plan).unwrap();
        assert_eq!((index.pyramid_misses(), index.pyramid_hits()), (1, 1));
        assert_eq!(index.pyramid_level_hits(), vec![(4, 1)]);
        let Answer::Marginal { dims, .. } = &first else {
            panic!("expected marginal");
        };
        assert_eq!(dims, &[64, 64]);
        let coarse =
            SanitizedMatrix::from_entries("test", 1.0, coarsen_to_level(m.matrix(), 4).unwrap());
        let reference = execute(&coarse, &QueryPlan::Marginal { keep: vec![0, 1] }).unwrap();
        assert_eq!(bits(&first), bits(&reference));
        assert_eq!(bits(&warm), bits(&reference));
    }

    #[test]
    fn resident_bytes_and_build_time_grow_on_first_touch_only() {
        let m = release(4);
        let index = ReleaseIndex::new(Arc::clone(&m));
        let base = index.resident_bytes();
        assert_eq!(index.build_nanos(), 0);

        index.top_k(5);
        let after_order = index.resident_bytes();
        assert!(after_order > base, "order must be charged");
        let nanos_order = index.build_nanos();

        index.marginal_table(&[0, 1]).unwrap();
        assert!(index.resident_bytes() > after_order);
        assert!(index.build_nanos() >= nanos_order);

        // Warm touches change nothing.
        let settled = (index.resident_bytes(), index.build_nanos());
        index.top_k(5);
        index.marginal_table(&[0, 1]).unwrap();
        let _ = index.total();
        let _ = index.total();
        assert_eq!((index.resident_bytes(), index.build_nanos()), settled);
    }
}
