//! Query-workload generators (§6.1: "1000 queries generated based on
//! random shapes and sizes" and "fixed coverage queries with range from 1%
//! to 10% of dataspace side").

use dpod_fmatrix::{AxisBox, Shape};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// The two query classes of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QueryWorkload {
    /// Uniformly random shape and size: each dimension's interval endpoints
    /// are drawn independently.
    Random,
    /// Fixed coverage: each dimension's side length is `coverage · F_i`
    /// (at least one cell), position uniform.
    FixedCoverage {
        /// Fraction of each dimension's side, in `(0, 1]`.
        coverage: f64,
    },
}

impl QueryWorkload {
    /// Human-readable label used in experiment tables.
    pub fn label(&self) -> String {
        match self {
            QueryWorkload::Random => "random".to_string(),
            QueryWorkload::FixedCoverage { coverage } => {
                format!("{:.0}% coverage", coverage * 100.0)
            }
        }
    }

    /// Draws one query over `shape`.
    pub fn draw(&self, shape: &Shape, rng: &mut dyn RngCore) -> AxisBox {
        match *self {
            QueryWorkload::Random => random_box(shape, rng),
            QueryWorkload::FixedCoverage { coverage } => {
                debug_assert!(coverage > 0.0 && coverage <= 1.0);
                let mut lo = Vec::with_capacity(shape.ndim());
                let mut hi = Vec::with_capacity(shape.ndim());
                for &len in shape.dims() {
                    let side = (((len as f64) * coverage).round() as usize).clamp(1, len);
                    let start = rng.gen_range(0..=len - side);
                    lo.push(start);
                    hi.push(start + side);
                }
                AxisBox::new(lo, hi).expect("coverage boxes are valid")
            }
        }
    }

    /// Draws `n` queries.
    pub fn draw_many(&self, shape: &Shape, n: usize, rng: &mut dyn RngCore) -> Vec<AxisBox> {
        (0..n).map(|_| self.draw(shape, rng)).collect()
    }
}

/// A non-empty uniformly random box: endpoints drawn per dimension,
/// swapped into order, widened by one cell so the query is never empty.
fn random_box(shape: &Shape, rng: &mut dyn RngCore) -> AxisBox {
    let mut lo = Vec::with_capacity(shape.ndim());
    let mut hi = Vec::with_capacity(shape.ndim());
    for &len in shape.dims() {
        let a = rng.gen_range(0..len);
        let b = rng.gen_range(0..len);
        let (l, h) = if a <= b { (a, b) } else { (b, a) };
        lo.push(l);
        hi.push(h + 1);
    }
    AxisBox::new(lo, hi).expect("ordered endpoints")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(dims: &[usize]) -> Shape {
        Shape::new(dims.to_vec()).unwrap()
    }

    #[test]
    fn random_queries_are_valid_and_nonempty() {
        let s = shape(&[30, 20, 10]);
        let mut rng = dpod_dp::seeded_rng(1);
        for q in QueryWorkload::Random.draw_many(&s, 500, &mut rng) {
            assert!(q.fits(&s));
            assert!(!q.is_empty());
        }
    }

    #[test]
    fn fixed_coverage_has_fixed_side() {
        let s = shape(&[100, 100]);
        let w = QueryWorkload::FixedCoverage { coverage: 0.05 };
        let mut rng = dpod_dp::seeded_rng(2);
        for q in w.draw_many(&s, 200, &mut rng) {
            assert!(q.fits(&s));
            assert_eq!(q.extent(0), 5);
            assert_eq!(q.extent(1), 5);
        }
    }

    #[test]
    fn full_coverage_is_the_whole_domain() {
        let s = shape(&[12, 7]);
        let w = QueryWorkload::FixedCoverage { coverage: 1.0 };
        let mut rng = dpod_dp::seeded_rng(3);
        let q = w.draw(&s, &mut rng);
        assert_eq!(q, AxisBox::full(&s));
    }

    #[test]
    fn tiny_coverage_clamps_to_one_cell() {
        let s = shape(&[10]);
        let w = QueryWorkload::FixedCoverage { coverage: 0.001 };
        let mut rng = dpod_dp::seeded_rng(4);
        let q = w.draw(&s, &mut rng);
        assert_eq!(q.volume(), 1);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(QueryWorkload::Random.label(), "random");
        assert_eq!(
            QueryWorkload::FixedCoverage { coverage: 0.05 }.label(),
            "5% coverage"
        );
    }

    #[test]
    fn random_positions_vary() {
        let s = shape(&[50, 50]);
        let mut rng = dpod_dp::seeded_rng(5);
        let qs = QueryWorkload::Random.draw_many(&s, 50, &mut rng);
        let first = &qs[0];
        assert!(qs.iter().any(|q| q != first));
    }
}
