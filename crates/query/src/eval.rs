//! The evaluation loop: true answers vs private answers over a workload.

use crate::metrics::{MreOptions, SummaryStats};
use dpod_core::SanitizedMatrix;
use dpod_fmatrix::{AxisBox, DenseMatrix, PrefixSum};
use serde::{Deserialize, Serialize};

/// The outcome of evaluating one sanitized release against one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// Mechanism that produced the release.
    pub mechanism: String,
    /// Total privacy budget of the release.
    pub epsilon: f64,
    /// Error distribution over the workload (mean is the paper's MRE).
    pub stats: SummaryStats,
}

/// Evaluates `sanitized` on `queries`, comparing against the exact counts
/// of `truth`.
///
/// Truth is computed through a prefix-sum table built once per call
/// (`O(d·size)` + `O(2^d)` per query); reuse [`evaluate_with_prefix`] when
/// scoring many releases of the same input.
pub fn evaluate(
    truth: &DenseMatrix<u64>,
    sanitized: &SanitizedMatrix,
    queries: &[AxisBox],
    options: MreOptions,
) -> EvalReport {
    let prefix = PrefixSum::from_counts(truth);
    evaluate_with_prefix(&prefix, truth.total(), sanitized, queries, options)
}

/// [`evaluate`] with a caller-owned truth table (avoids rebuilding it for
/// every mechanism × ε combination in a sweep).
pub fn evaluate_with_prefix(
    truth_prefix: &PrefixSum<i128>,
    total: f64,
    sanitized: &SanitizedMatrix,
    queries: &[AxisBox],
    options: MreOptions,
) -> EvalReport {
    let errors: Vec<f64> = queries
        .iter()
        .map(|q| {
            let t = truth_prefix.box_count(q) as f64;
            let e = sanitized.range_sum(q);
            options.relative_error(t, e, total)
        })
        .collect();
    EvalReport {
        mechanism: sanitized.mechanism().to_string(),
        epsilon: sanitized.epsilon(),
        stats: SummaryStats::from_errors(errors),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::QueryWorkload;
    use dpod_core::{baselines::Uniform, Mechanism};
    use dpod_dp::Epsilon;
    use dpod_fmatrix::Shape;

    #[test]
    fn perfect_release_has_zero_error() {
        let s = Shape::new(vec![10, 10]).unwrap();
        let truth = DenseMatrix::from_vec(s.clone(), vec![4u64; 100]).unwrap();
        // Fake a "release" that is exactly the truth.
        let perfect =
            SanitizedMatrix::from_entries("oracle", f64::INFINITY, truth.map(|v| v as f64));
        let mut rng = dpod_dp::seeded_rng(1);
        let queries = QueryWorkload::Random.draw_many(&s, 200, &mut rng);
        let report = evaluate(&truth, &perfect, &queries, MreOptions::default());
        assert_eq!(report.stats.max, 0.0);
        assert_eq!(report.stats.mean, 0.0);
    }

    #[test]
    fn uniform_baseline_error_is_positive_on_skewed_data() {
        let s = Shape::new(vec![16, 16]).unwrap();
        let mut truth = DenseMatrix::<u64>::zeros(s.clone());
        truth.set(&[0, 0], 10_000).unwrap();
        let out = Uniform
            .sanitize(
                &truth,
                Epsilon::new(1.0).unwrap(),
                &mut dpod_dp::seeded_rng(2),
            )
            .unwrap();
        let mut rng = dpod_dp::seeded_rng(3);
        let queries = QueryWorkload::FixedCoverage { coverage: 0.25 }.draw_many(&s, 100, &mut rng);
        let report = evaluate(&truth, &out, &queries, MreOptions::default());
        assert!(report.stats.mean > 10.0, "mean {:?}", report.stats.mean);
        assert_eq!(report.mechanism, "UNIFORM");
    }

    #[test]
    fn prefix_reuse_matches_direct_evaluation() {
        let s = Shape::new(vec![12, 12]).unwrap();
        let truth = DenseMatrix::from_vec(s.clone(), (0..144).map(|i| i % 7).collect()).unwrap();
        let out = Uniform
            .sanitize(
                &truth,
                Epsilon::new(0.5).unwrap(),
                &mut dpod_dp::seeded_rng(4),
            )
            .unwrap();
        let mut rng = dpod_dp::seeded_rng(5);
        let queries = QueryWorkload::Random.draw_many(&s, 50, &mut rng);
        let direct = evaluate(&truth, &out, &queries, MreOptions::default());
        let prefix = PrefixSum::from_counts(&truth);
        let reused = evaluate_with_prefix(
            &prefix,
            truth.total(),
            &out,
            &queries,
            MreOptions::default(),
        );
        assert_eq!(direct, reused);
    }
}
