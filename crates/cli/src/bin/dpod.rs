//! The `dpod` binary: thin argument parsing over [`dpod_cli::commands`].

use dpod_cli::commands::{self, GenerateArgs, SanitizeArgs};
use dpod_cli::{registry, CliError};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
dpod — differentially-private OD-matrix publication

USAGE:
  dpod generate --city <newyork|denver|detroit> [--trips N] [--stops K]
                [--seed S] [--out FILE]
  dpod sanitize --input trips.csv [--cells M] --epsilon E
                [--mechanism NAME] [--seed S] [--out FILE]
  dpod publish  --input trips.csv --name NAME --catalog DIR [--cells M]
                --epsilon E [--mechanism NAME] [--seed S]
                [--epoch T [--retain K] [--series-budget EPS]]
  dpod serve    --catalog DIR [--addr HOST:PORT] [--workers N]
                [--cache-mb M] [--index-mb M] [--wire auto|json|binary]
                [--front-end event|pool] [--event-loops N]
                [--listen-backlog N] [--metrics-addr HOST:PORT]
                [--retain-ttl SECS [--retain-last K]]
  dpod inspect  --release release.json
  dpod query    --release release.json --range SPEC [--range SPEC]...
  dpod query    --connect HOST:PORT --release NAME [--binary true]
                --range SPEC [--range SPEC]...
  dpod replay   FILE --release release.json [--cold true]
                [--answers out.ndjson] [--slo-report FILE]
  dpod replay   FILE --connect HOST:PORT --release NAME [--binary true]
                [--answers out.ndjson] [--connections N]
                [--slo-report FILE]

QUERY SPEC (--range accepts classic ranges and the typed algebra):
  '0..4,*,3..5,*'        range sum: one clause per dimension, 'lo..hi' or '*'
  'total'                estimated total count
  'top:10'               the 10 largest cells
  'marginal:0,1'         marginal over the kept dimensions
  'od:o=0..4x0..4;s0=2..6x2..6;d=8..16x8..16'
                         OD query from 2-D regions (legs: o/origin,
                         d/dest/destination, sN/stopN; unlisted legs
                         span their full extent)
REPLAY: FILE is NDJSON, one QueryPlan per line (the `plan` field of a
        Plan request, e.g. {\"TopK\":{\"k\":10}}); prints latency and
        throughput. --answers records each response for bit-identical
        diffing between runs; --cold executes without the release index;
        --connections N fans the stream out over N concurrent client
        connections (remote replays; the load-generator mode);
        --slo-report writes a machine-readable JSON latency report
        (aggregate and per-connection quantiles).
EPOCHS: --epoch T publishes NAME as epoch T of its series (catalog
        entry NAME@T; epoch ids are monotonic per series — republish a
        live epoch or advance past the frontier, never resurrect a
        retired one). --retain K then tombstones every epoch older than
        the newest K, releasing their ε back to the series ledger.
        --series-budget EPS refuses any publish whose post-retention
        live epochs would together hold more than EPS of active ε. A
        pre-epoch release named NAME serves as epoch 0 of series NAME.
        `serve --retain-ttl SECS` sweeps the same retention (keeping
        --retain-last K epochs, default 1) on a timer for unattended
        feeds.
        Window plans slide over a series, e.g.
        {\"Window\":{\"select\":{\"LastK\":{\"k\":4}},\"merge\":\"Sum\",
        \"plan\":\"Total\"}}
MECHANISMS: see `dpod mechanisms`
SERVE WIRE: newline-delimited JSON by default; e.g.
            {\"Query\":{\"release\":\"NAME\",\"lo\":[0,0],\"hi\":[4,4]}}
            A connection opening with the 5-byte preamble 'DPRB'+version
            speaks the length-prefixed binary protocol instead (fastest;
            used by `dpod query --binary true`). --wire restricts an
            endpoint to one encoding. DPOD_WIRE_PACKED=1 makes binary
            clients advertise the varint-packed frame feature bit
            (fewer wire bytes; old servers refuse, old frames
            unchanged).
SERVE CORE: --front-end event (default) serves many idle connections on
            a few workers via epoll readiness loops; --front-end pool
            is the legacy thread-per-connection kill-switch. The event
            core runs --event-loops N shards, each with its own epoll fd
            and SO_REUSEPORT listener (default: DPOD_EVENT_LOOPS, then
            min(4, cores/2)). --listen-backlog N sizes every listener's
            accept queue (default 1024; kernel clamps to somaxconn).
            SIGINT drains in flight responses across all shards, prints
            a final stats line, and exits 0. --metrics-addr additionally
            serves a Prometheus text-format exposition at GET /metrics
            on its own listener (per-shard series carry a shard label).
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<String, CliError> {
    let Some(cmd) = args.first() else {
        return Err("no command given".into());
    };
    // `replay` takes its stream file positionally (`dpod replay FILE`);
    // every other argument everywhere is `--key value`.
    let mut rest = &args[1..];
    let mut positional: Option<String> = None;
    if cmd == "replay" {
        if let Some(first) = rest.first().filter(|a| !a.starts_with("--")) {
            positional = Some(first.clone());
            rest = &rest[1..];
        }
    }
    let opts = Opts::parse(rest)?;
    match cmd.as_str() {
        "generate" => {
            let text = commands::generate(&GenerateArgs {
                city: opts.require("city")?,
                trips: opts.parse_or("trips", 10_000)?,
                stops: opts.parse_or("stops", 0)?,
                seed: opts.parse_or("seed", 0)?,
            })?;
            opts.write_or_return("out", text)
        }
        "sanitize" => {
            let input = opts.require("input")?;
            let csv_text = std::fs::read_to_string(&input)
                .map_err(|e| CliError(format!("cannot read {input}: {e}")))?;
            let json = commands::sanitize(
                &csv_text,
                &SanitizeArgs {
                    cells: opts.parse_or("cells", 16)?,
                    epsilon: opts.parse_require("epsilon")?,
                    mechanism: opts.get("mechanism").unwrap_or("daf-entropy").to_string(),
                    seed: opts.parse_or("seed", 0)?,
                },
            )?;
            opts.write_or_return("out", json)
        }
        "inspect" => {
            let release = commands::load_release(&PathBuf::from(opts.require("release")?))?;
            commands::inspect(release)
        }
        "query" => {
            if opts.ranges.is_empty() {
                return Err("query needs at least one --range".into());
            }
            match opts.get("connect") {
                Some(addr) => commands::remote_query(
                    addr,
                    &opts.require("release")?,
                    &opts.ranges,
                    opts.parse_or("binary", false)?,
                ),
                None => {
                    let release = commands::load_release(&PathBuf::from(opts.require("release")?))?;
                    commands::query(release, &opts.ranges)
                }
            }
        }
        "publish" => {
            let input = opts.require("input")?;
            let csv_text = std::fs::read_to_string(&input)
                .map_err(|e| CliError(format!("cannot read {input}: {e}")))?;
            let epoch = match opts.get("epoch") {
                Some(v) => Some(
                    v.parse::<u64>()
                        .map_err(|_| CliError(format!("--epoch: cannot parse '{v}'")))?,
                ),
                None => None,
            };
            let retain = match opts.get("retain") {
                Some(v) => Some(
                    v.parse::<usize>()
                        .map_err(|_| CliError(format!("--retain: cannot parse '{v}'")))?,
                ),
                None => None,
            };
            let series_budget = match opts.get("series-budget") {
                Some(v) => Some(
                    v.parse::<f64>()
                        .map_err(|_| CliError(format!("--series-budget: cannot parse '{v}'")))?,
                ),
                None => None,
            };
            commands::publish(
                &csv_text,
                &SanitizeArgs {
                    cells: opts.parse_or("cells", 16)?,
                    epsilon: opts.parse_require("epsilon")?,
                    mechanism: opts.get("mechanism").unwrap_or("daf-entropy").to_string(),
                    seed: opts.parse_or("seed", 0)?,
                },
                &opts.require("name")?,
                &PathBuf::from(opts.require("catalog")?),
                epoch,
                retain,
                series_budget,
            )
        }
        "replay" => {
            let file = match positional {
                Some(f) => f,
                None => opts.require("file")?,
            };
            commands::replay(&commands::ReplayArgs {
                file: PathBuf::from(file),
                release: opts.require("release")?,
                connect: opts.get("connect").map(str::to_string),
                binary: opts.parse_or("binary", false)?,
                cold: opts.parse_or("cold", false)?,
                answers: opts.get("answers").map(PathBuf::from),
                connections: opts.parse_or("connections", 1)?,
                slo_report: opts.get("slo-report").map(PathBuf::from),
            })
        }
        "serve" => {
            let front_end = match opts.get("front-end") {
                Some(v) => Some(v.parse::<dpod_serve::FrontEnd>().map_err(CliError)?),
                None => None,
            };
            let (handle, server, metrics) = commands::start_server(&commands::ServeArgs {
                catalog: PathBuf::from(opts.require("catalog")?),
                addr: opts.get("addr").unwrap_or("127.0.0.1:7878").to_string(),
                workers: opts.parse_or("workers", 4)?,
                cache_mb: opts.parse_or("cache-mb", 256)?,
                index_mb: opts.parse_or("index-mb", 64)?,
                wire: opts.parse_or("wire", dpod_serve::WireMode::Auto)?,
                front_end,
                event_loops: opts.parse_or("event-loops", 0)?,
                listen_backlog: opts.parse_or("listen-backlog", 1024)?,
                metrics_addr: opts.get("metrics-addr").map(str::to_string),
                retain_ttl: match opts.get("retain-ttl") {
                    Some(v) => Some(v.parse::<u64>().map_err(|_| {
                        CliError(format!("--retain-ttl: cannot parse '{v}' (seconds)"))
                    })?),
                    None => None,
                },
                retain_last: opts.parse_or("retain-last", 1)?,
            })?;
            eprintln!(
                "dpod-serve listening on {} ({} releases in {} series; {:?} front end, \
                 {} event loop{}, listen backlog {})",
                handle.addr(),
                server.catalog().len(),
                dpod_serve::series::series_names(server.catalog()).len(),
                handle.front_end(),
                handle.event_loops(),
                if handle.event_loops() == 1 { "" } else { "s" },
                handle.listen_backlog(),
            );
            if let Some(exporter) = &metrics {
                eprintln!("metrics exposition on http://{}/metrics", exporter.addr());
            }
            // Serve until SIGINT, printing one operator stats line per
            // minute (traffic, connections, cache and index hit-rates).
            // On SIGINT: stop accepting, drain in-flight responses,
            // print a final stats line, and exit 0.
            let sigint_armed = polling::signal::install_sigint().is_ok();
            let started = std::time::Instant::now();
            let mut next_stats = std::time::Duration::from_secs(60);
            let mut tracker = commands::StatsTracker::new();
            loop {
                std::thread::sleep(std::time::Duration::from_millis(200));
                if sigint_armed && polling::signal::sigint_received() {
                    eprintln!("SIGINT: draining in-flight responses…");
                    handle.drain(std::time::Duration::from_secs(5));
                    drop(metrics);
                    return Ok(format!("shutdown | {}\n", tracker.line(&server)));
                }
                if started.elapsed() >= next_stats {
                    eprintln!("{}", tracker.line(&server));
                    next_stats += std::time::Duration::from_secs(60);
                }
            }
        }
        "mechanisms" => Ok(format!("{}\n", registry::mechanism_names().join("\n"))),
        other => Err(format!("unknown command '{other}'").into()),
    }
}

/// Flat `--key value` option bag (with repeatable `--range`).
struct Opts {
    pairs: Vec<(String, String)>,
    ranges: Vec<String>,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut pairs = Vec::new();
        let mut ranges = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument '{a}'").into());
            };
            let value = it
                .next()
                .ok_or_else(|| CliError(format!("--{key} needs a value")))?;
            if key == "range" {
                ranges.push(value.clone());
            } else {
                pairs.push((key.to_string(), value.clone()));
            }
        }
        Ok(Opts { pairs, ranges })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, key: &str) -> Result<String, CliError> {
        self.get(key)
            .map(str::to_string)
            .ok_or_else(|| CliError(format!("--{key} is required")))
    }

    fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError(format!("--{key}: cannot parse '{v}'"))),
        }
    }

    fn parse_require<T: std::str::FromStr>(&self, key: &str) -> Result<T, CliError> {
        let v = self.require(key)?;
        v.parse()
            .map_err(|_| CliError(format!("--{key}: cannot parse '{v}'")))
    }

    /// Writes to `--out` when given (returning a confirmation line),
    /// otherwise returns the content for stdout.
    fn write_or_return(&self, key: &str, content: String) -> Result<String, CliError> {
        match self.get(key) {
            None => Ok(content),
            Some(path) => {
                std::fs::write(path, &content)
                    .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
                Ok(format!("wrote {path}\n"))
            }
        }
    }
}
