//! Mechanism lookup by CLI name.
//!
//! The CLI name of a mechanism is its display name
//! ([`Mechanism::name`](dpod_core::Mechanism::name)) lowercased — derived
//! from [`dpod_core::all_mechanisms`] rather than a hand-maintained list,
//! so the `sanitize`/`publish`/`serve` commands can never drift from the
//! mechanisms core actually ships: adding a mechanism to
//! `all_mechanisms()` makes it addressable here with no CLI change.

use crate::CliError;
use dpod_core::{all_mechanisms, DynMechanism};

/// The CLI name of a mechanism display name (`"DAF-Entropy"` →
/// `"daf-entropy"`).
pub fn cli_name(display_name: &str) -> String {
    display_name.to_ascii_lowercase()
}

/// Every mechanism's CLI name, in [`all_mechanisms`] order (paper suite
/// first, then the extension baselines).
pub fn mechanism_names() -> Vec<String> {
    all_mechanisms()
        .iter()
        .map(|m| cli_name(m.name()))
        .collect()
}

/// Resolves a CLI mechanism name (case-insensitive) to a boxed mechanism
/// with default parameters.
///
/// # Errors
/// [`CliError`] listing the valid names.
pub fn mechanism_by_name(name: &str) -> Result<DynMechanism, CliError> {
    let want = cli_name(name);
    all_mechanisms()
        .into_iter()
        .find(|m| cli_name(m.name()) == want)
        .ok_or_else(|| {
            CliError(format!(
                "unknown mechanism '{name}'; valid: {}",
                mechanism_names().join(", ")
            ))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_name_resolves() {
        for name in mechanism_names() {
            let m = mechanism_by_name(&name).unwrap();
            assert!(!m.name().is_empty());
        }
    }

    #[test]
    fn names_are_case_insensitive() {
        assert_eq!(mechanism_by_name("EBP").unwrap().name(), "EBP");
        assert_eq!(
            mechanism_by_name("DAF-Entropy").unwrap().name(),
            "DAF-Entropy"
        );
    }

    #[test]
    fn unknown_names_list_alternatives() {
        let Err(err) = mechanism_by_name("htf") else {
            panic!("'htf' should not resolve");
        };
        assert!(err.0.contains("daf-entropy"), "{err}");
    }

    #[test]
    fn registry_matches_core_exactly() {
        // The anti-drift property this module exists for: one CLI name
        // per core mechanism, bijectively.
        let core: Vec<String> = dpod_core::all_mechanisms()
            .iter()
            .map(|m| m.name().to_string())
            .collect();
        let resolved: Vec<String> = mechanism_names()
            .iter()
            .map(|n| mechanism_by_name(n).unwrap().name().to_string())
            .collect();
        assert_eq!(core, resolved);
        let mut dedup = mechanism_names();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), core.len(), "CLI names must be unique");
    }
}
