//! Mechanism lookup by CLI name.

use crate::CliError;
use dpod_core::{baselines, daf, grid, DynMechanism};

/// The CLI names, in help order.
pub const MECHANISM_NAMES: [&str; 10] = [
    "identity",
    "uniform",
    "eug",
    "ebp",
    "mkm",
    "daf-entropy",
    "daf-homogeneity",
    "privelet",
    "quadtree",
    "ag",
];

/// Resolves a CLI mechanism name (case-insensitive) to a boxed mechanism
/// with default parameters.
///
/// # Errors
/// [`CliError`] listing the valid names.
pub fn mechanism_by_name(name: &str) -> Result<DynMechanism, CliError> {
    let m: DynMechanism = match name.to_ascii_lowercase().as_str() {
        "identity" => Box::new(baselines::Identity),
        "uniform" => Box::new(baselines::Uniform),
        "eug" => Box::new(grid::Eug::default()),
        "ebp" => Box::new(grid::Ebp::default()),
        "mkm" => Box::new(baselines::Mkm::default()),
        "daf-entropy" => Box::new(daf::DafEntropy::default()),
        "daf-homogeneity" => Box::new(daf::DafHomogeneity::default()),
        "privelet" => Box::new(baselines::Privelet),
        "quadtree" => Box::new(baselines::QuadTree::default()),
        "ag" => Box::new(grid::AdaptiveGrid::default()),
        other => {
            return Err(CliError(format!(
                "unknown mechanism '{other}'; valid: {}",
                MECHANISM_NAMES.join(", ")
            )))
        }
    };
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_name_resolves() {
        for name in MECHANISM_NAMES {
            let m = mechanism_by_name(name).unwrap();
            assert!(!m.name().is_empty());
        }
    }

    #[test]
    fn names_are_case_insensitive() {
        assert_eq!(mechanism_by_name("EBP").unwrap().name(), "EBP");
        assert_eq!(
            mechanism_by_name("DAF-Entropy").unwrap().name(),
            "DAF-Entropy"
        );
    }

    #[test]
    fn unknown_names_list_alternatives() {
        let Err(err) = mechanism_by_name("htf") else {
            panic!("'htf' should not resolve");
        };
        assert!(err.0.contains("daf-entropy"), "{err}");
    }
}
