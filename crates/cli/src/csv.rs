//! Minimal trajectory CSV codec (no external CSV dependency — the format
//! is a fixed-arity float table).

use crate::CliError;
use dpod_data::Trajectory;

/// Serializes trajectories as CSV lines (`x0,y0,x1,y1,…`).
///
/// Coordinates are written with 6 decimals; values within rounding
/// distance of 1.0 are clamped to `0.999999` so the output always
/// re-parses under the `[0, 1)` contract.
pub fn to_csv(trips: &[Trajectory]) -> String {
    let mut out = String::new();
    for t in trips {
        let mut first = true;
        for [x, y] in &t.points {
            if !first {
                out.push(',');
            }
            let (x, y) = (x.min(0.999_999), y.min(0.999_999));
            out.push_str(&format!("{x:.6},{y:.6}"));
            first = false;
        }
        out.push('\n');
    }
    out
}

/// Parses trajectory CSV.
///
/// Empty lines and lines starting with `#` are skipped. Every data line
/// must hold the same even number (≥ 4) of finite unit-square floats.
///
/// # Errors
/// [`CliError`] naming the first offending line.
pub fn from_csv(text: &str) -> Result<Vec<Trajectory>, CliError> {
    let mut trips = Vec::new();
    let mut arity: Option<usize> = None;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if !fields.len().is_multiple_of(2) || fields.len() < 4 {
            return Err(CliError(format!(
                "line {}: expected an even number (>= 4) of coordinates, got {}",
                lineno + 1,
                fields.len()
            )));
        }
        match arity {
            None => arity = Some(fields.len()),
            Some(a) if a != fields.len() => {
                return Err(CliError(format!(
                    "line {}: {} coordinates but earlier lines had {a}",
                    lineno + 1,
                    fields.len()
                )));
            }
            Some(_) => {}
        }
        let mut points = Vec::with_capacity(fields.len() / 2);
        for pair in fields.chunks_exact(2) {
            let x: f64 = pair[0]
                .parse()
                .map_err(|_| CliError(format!("line {}: bad float '{}'", lineno + 1, pair[0])))?;
            let y: f64 = pair[1]
                .parse()
                .map_err(|_| CliError(format!("line {}: bad float '{}'", lineno + 1, pair[1])))?;
            for (v, label) in [(x, pair[0]), (y, pair[1])] {
                if !v.is_finite() || !(0.0..1.0).contains(&v) {
                    return Err(CliError(format!(
                        "line {}: coordinate '{label}' outside [0, 1)",
                        lineno + 1
                    )));
                }
            }
            points.push([x, y]);
        }
        trips.push(Trajectory { points });
    }
    Ok(trips)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let trips = vec![
            Trajectory {
                points: vec![[0.1, 0.2], [0.5, 0.5], [0.9, 0.8]],
            },
            Trajectory {
                points: vec![[0.0, 0.0], [0.3, 0.3], [0.999999, 0.5]],
            },
        ];
        let text = to_csv(&trips);
        let parsed = from_csv(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        for (a, b) in trips.iter().zip(&parsed) {
            for (pa, pb) in a.points.iter().zip(&b.points) {
                assert!((pa[0] - pb[0]).abs() < 1e-5);
                assert!((pa[1] - pb[1]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# header\n\n0.1,0.1,0.2,0.2\n";
        assert_eq!(from_csv(text).unwrap().len(), 1);
    }

    #[test]
    fn rejects_odd_fields() {
        let err = from_csv("0.1,0.2,0.3\n").unwrap_err();
        assert!(err.0.contains("even number"), "{err}");
    }

    #[test]
    fn rejects_mixed_arity() {
        let err = from_csv("0.1,0.1,0.2,0.2\n0.1,0.1,0.2,0.2,0.3,0.3\n").unwrap_err();
        assert!(err.0.contains("earlier lines"), "{err}");
    }

    #[test]
    fn rejects_bad_floats_and_range() {
        assert!(from_csv("a,0.2,0.3,0.4\n").is_err());
        assert!(from_csv("1.5,0.2,0.3,0.4\n").is_err());
        assert!(from_csv("-0.1,0.2,0.3,0.4\n").is_err());
        assert!(from_csv("0.1,NaN,0.3,0.4\n").is_err());
    }
}
