//! Parsing of analyst range-query specifications.
//!
//! One comma-separated clause per matrix dimension:
//! `lo..hi` (half-open cell interval) or `*` (full extent), e.g.
//! `0..4,*,3..5,*` for a 4-D matrix.

use crate::CliError;
use dpod_fmatrix::{AxisBox, Shape};

/// Parses a range spec against a concrete domain.
///
/// # Errors
/// [`CliError`] with the offending clause for wrong arity, malformed
/// bounds, inverted or out-of-domain intervals.
pub fn parse_range(spec: &str, shape: &Shape) -> Result<AxisBox, CliError> {
    let clauses: Vec<&str> = spec.split(',').map(str::trim).collect();
    if clauses.len() != shape.ndim() {
        return Err(CliError(format!(
            "range has {} clauses but the matrix has {} dimensions",
            clauses.len(),
            shape.ndim()
        )));
    }
    let mut lo = Vec::with_capacity(clauses.len());
    let mut hi = Vec::with_capacity(clauses.len());
    for (dim, clause) in clauses.iter().enumerate() {
        if *clause == "*" {
            lo.push(0);
            hi.push(shape.dim(dim));
            continue;
        }
        let (a, b) = clause
            .split_once("..")
            .ok_or_else(|| CliError(format!("clause '{clause}': expected 'lo..hi' or '*'")))?;
        let a: usize = a
            .trim()
            .parse()
            .map_err(|_| CliError(format!("clause '{clause}': bad lower bound")))?;
        let b: usize = b
            .trim()
            .parse()
            .map_err(|_| CliError(format!("clause '{clause}': bad upper bound")))?;
        if a >= b {
            return Err(CliError(format!(
                "clause '{clause}': empty or inverted interval"
            )));
        }
        if b > shape.dim(dim) {
            return Err(CliError(format!(
                "clause '{clause}': exceeds dimension {dim} (size {})",
                shape.dim(dim)
            )));
        }
        lo.push(a);
        hi.push(b);
    }
    AxisBox::new(lo, hi).map_err(|e| CliError(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> Shape {
        Shape::new(vec![10, 20, 30]).unwrap()
    }

    #[test]
    fn parses_mixed_clauses() {
        let b = parse_range("2..5, *, 10..30", &shape()).unwrap();
        assert_eq!(b.lo(), &[2, 0, 10]);
        assert_eq!(b.hi(), &[5, 20, 30]);
    }

    #[test]
    fn rejects_wrong_arity() {
        assert!(parse_range("1..2,*", &shape()).is_err());
    }

    #[test]
    fn rejects_malformed_clauses() {
        for bad in ["1-2,*,*", "a..2,*,*", "2..a,*,*", "5..5,*,*", "7..3,*,*"] {
            assert!(parse_range(bad, &shape()).is_err(), "accepted '{bad}'");
        }
    }

    #[test]
    fn rejects_out_of_domain() {
        assert!(parse_range("0..11,*,*", &shape()).is_err());
    }
}
