//! Parsing of analyst query specifications.
//!
//! The classic range form is one comma-separated clause per matrix
//! dimension: `lo..hi` (half-open cell interval) or `*` (full extent),
//! e.g. `0..4,*,3..5,*` for a 4-D matrix.
//!
//! [`parse_plan`] accepts that form plus the typed query algebra
//! (`dpod_query::QueryPlan`):
//!
//! ```text
//! total                          estimated total count
//! top:K                          the K largest cells (e.g. top:10)
//! marginal:D0,D1,…               marginal over the kept dimensions
//! od:LEG=REGION;LEG=REGION;…     OD query from 2-D regions, where LEG is
//!                                o|origin, d|dest|destination, or sN|stopN
//!                                and REGION is XLO..XHIxYLO..YHI
//!                                (e.g. od:o=0..4x0..4;s0=2..6x2..6;d=8..16x8..16)
//! drill:L:SPEC                   route SPEC (range/marginal/total) to
//!                                resolution-pyramid level L; range clauses
//!                                address the coarsened domain
//!                                (e.g. drill:4:marginal:0,1). `level:` is a
//!                                synonym for `drill:`.
//! lo..hi,*,…                     classic range sum (one clause per dim)
//! ```

use crate::CliError;
use dpod_fmatrix::{coarsen_shape, AxisBox, Shape};
use dpod_query::{QueryPlan, Region};

/// Parses a range spec against a concrete domain.
///
/// # Errors
/// [`CliError`] with the offending clause for wrong arity, malformed
/// bounds, inverted or out-of-domain intervals.
pub fn parse_range(spec: &str, shape: &Shape) -> Result<AxisBox, CliError> {
    let clauses: Vec<&str> = spec.split(',').map(str::trim).collect();
    if clauses.len() != shape.ndim() {
        return Err(CliError(format!(
            "range has {} clauses but the matrix has {} dimensions",
            clauses.len(),
            shape.ndim()
        )));
    }
    let mut lo = Vec::with_capacity(clauses.len());
    let mut hi = Vec::with_capacity(clauses.len());
    for (dim, clause) in clauses.iter().enumerate() {
        if *clause == "*" {
            lo.push(0);
            hi.push(shape.dim(dim));
            continue;
        }
        let (a, b) = clause
            .split_once("..")
            .ok_or_else(|| CliError(format!("clause '{clause}': expected 'lo..hi' or '*'")))?;
        let a: usize = a
            .trim()
            .parse()
            .map_err(|_| CliError(format!("clause '{clause}': bad lower bound")))?;
        let b: usize = b
            .trim()
            .parse()
            .map_err(|_| CliError(format!("clause '{clause}': bad upper bound")))?;
        if a >= b {
            return Err(CliError(format!(
                "clause '{clause}': empty or inverted interval"
            )));
        }
        if b > shape.dim(dim) {
            return Err(CliError(format!(
                "clause '{clause}': exceeds dimension {dim} (size {})",
                shape.dim(dim)
            )));
        }
        lo.push(a);
        hi.push(b);
    }
    AxisBox::new(lo, hi).map_err(|e| CliError(e.to_string()))
}

/// Parses one query spec — classic range or typed-algebra form — into a
/// [`QueryPlan`] against a concrete domain.
///
/// # Errors
/// [`CliError`] naming the offending clause; OD leg and marginal
/// dimension *indices* are validated at execution time against the
/// release (only the classic range form needs the domain here).
pub fn parse_plan(spec: &str, shape: &Shape) -> Result<QueryPlan, CliError> {
    let spec = spec.trim();
    // Keywords are case-insensitive across the board; the payloads are
    // digits and punctuation (plus the od leg names, themselves
    // lowercased during parsing), so matching on a lowercased copy is
    // lossless. Error messages keep the user's original spelling.
    let lower = spec.to_ascii_lowercase();
    if lower == "total" {
        return Ok(QueryPlan::Total);
    }
    if let Some(k) = lower
        .strip_prefix("top:")
        .or_else(|| lower.strip_prefix("topk:"))
    {
        let k: usize = k
            .trim()
            .parse()
            .map_err(|_| CliError(format!("top spec '{spec}': bad count '{k}'")))?;
        return Ok(QueryPlan::TopK { k });
    }
    if let Some(dims) = lower.strip_prefix("marginal:") {
        let keep = dims
            .split(',')
            .map(|d| {
                d.trim()
                    .parse::<usize>()
                    .map_err(|_| CliError(format!("marginal spec '{spec}': bad dimension '{d}'")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(QueryPlan::Marginal { keep });
    }
    if let Some(legs) = lower.strip_prefix("od:") {
        return parse_od(spec, legs);
    }
    // `drill:`/`level:` are synonyms, both 6 bytes, so the inner spec
    // can be sliced from the user's original spelling for error text.
    if lower.starts_with("drill:") || lower.starts_with("level:") {
        return parse_drill(spec, &spec[6..], shape);
    }
    let q = parse_range(spec, shape)?;
    Ok(QueryPlan::Range {
        lo: q.lo().to_vec(),
        hi: q.hi().to_vec(),
    })
}

/// Parses the `LEVEL:SPEC` tail of a `drill:`/`level:` spec into a
/// [`QueryPlan::DrillDown`]. The inner spec is parsed against the
/// *coarsened* domain (every axis ceiling-halved `LEVEL` times), so a
/// classic range's clauses address coarse cells.
fn parse_drill(spec: &str, rest: &str, shape: &Shape) -> Result<QueryPlan, CliError> {
    let (level, inner_spec) = rest.split_once(':').ok_or_else(|| {
        CliError(format!(
            "drill spec '{spec}': expected LEVEL:SPEC (e.g. drill:2:total)"
        ))
    })?;
    let level: u32 = level
        .trim()
        .parse()
        .map_err(|_| CliError(format!("drill spec '{spec}': bad level '{level}'")))?;
    let coarse =
        coarsen_shape(shape, level).map_err(|e| CliError(format!("drill spec '{spec}': {e}")))?;
    let inner = parse_plan(inner_spec, &coarse)?;
    match inner {
        QueryPlan::Range { .. } | QueryPlan::Marginal { .. } | QueryPlan::Total => {}
        other => {
            return Err(CliError(format!(
                "drill spec '{spec}': {} plans cannot drill down \
                 (use a range, marginal, or total)",
                other.kind()
            )))
        }
    }
    Ok(QueryPlan::DrillDown {
        level,
        plan: Box::new(inner),
    })
}

/// Parses the `LEG=REGION;…` tail of an `od:` spec.
fn parse_od(spec: &str, legs: &str) -> Result<QueryPlan, CliError> {
    let mut plan = QueryPlan::od();
    for clause in legs.split(';').filter(|c| !c.trim().is_empty()) {
        let (leg, region) = clause.split_once('=').ok_or_else(|| {
            CliError(format!(
                "od spec '{spec}': clause '{clause}' needs LEG=REGION"
            ))
        })?;
        let region = parse_region(spec, region)?;
        let leg = leg.trim().to_ascii_lowercase();
        plan = match leg.as_str() {
            "o" | "origin" => plan.with_origin(region),
            "d" | "dest" | "destination" => plan.with_destination(region),
            _ => {
                let index = leg
                    .strip_prefix("stop")
                    .or_else(|| leg.strip_prefix('s'))
                    .and_then(|n| n.parse::<usize>().ok())
                    .ok_or_else(|| {
                        CliError(format!(
                            "od spec '{spec}': unknown leg '{leg}' \
                             (expected o, d, or sN/stopN)"
                        ))
                    })?;
                plan.with_stop(index, region)
            }
        };
    }
    Ok(plan)
}

/// Parses a 2-D region `XLO..XHIxYLO..YHI` (half-open on both axes).
fn parse_region(spec: &str, region: &str) -> Result<Region, CliError> {
    let err = || {
        CliError(format!(
            "od spec '{spec}': region '{region}' must be XLO..XHIxYLO..YHI"
        ))
    };
    let (x, y) = region.trim().split_once('x').ok_or_else(err)?;
    let axis = |clause: &str| -> Result<(usize, usize), CliError> {
        let (a, b) = clause.trim().split_once("..").ok_or_else(err)?;
        let a: usize = a.trim().parse().map_err(|_| err())?;
        let b: usize = b.trim().parse().map_err(|_| err())?;
        Ok((a, b))
    };
    let (xlo, xhi) = axis(x)?;
    let (ylo, yhi) = axis(y)?;
    Ok(Region::new((xlo, ylo), (xhi, yhi)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> Shape {
        Shape::new(vec![10, 20, 30]).unwrap()
    }

    #[test]
    fn parses_mixed_clauses() {
        let b = parse_range("2..5, *, 10..30", &shape()).unwrap();
        assert_eq!(b.lo(), &[2, 0, 10]);
        assert_eq!(b.hi(), &[5, 20, 30]);
    }

    #[test]
    fn rejects_wrong_arity() {
        assert!(parse_range("1..2,*", &shape()).is_err());
    }

    #[test]
    fn rejects_malformed_clauses() {
        for bad in ["1-2,*,*", "a..2,*,*", "2..a,*,*", "5..5,*,*", "7..3,*,*"] {
            assert!(parse_range(bad, &shape()).is_err(), "accepted '{bad}'");
        }
    }

    #[test]
    fn rejects_out_of_domain() {
        assert!(parse_range("0..11,*,*", &shape()).is_err());
    }

    #[test]
    fn plan_specs_parse_every_form() {
        let s = shape();
        assert_eq!(parse_plan("total", &s).unwrap(), QueryPlan::Total);
        // Keywords accept any casing, consistently.
        assert_eq!(parse_plan("Total", &s).unwrap(), QueryPlan::Total);
        assert_eq!(parse_plan("Top:7", &s).unwrap(), QueryPlan::TopK { k: 7 });
        assert_eq!(
            parse_plan("MARGINAL:1", &s).unwrap(),
            QueryPlan::Marginal { keep: vec![1] }
        );
        assert_eq!(
            parse_plan("OD:o=0..2x0..2", &s).unwrap(),
            QueryPlan::od().with_origin(Region::new((0, 0), (2, 2)))
        );
        assert_eq!(parse_plan("top:5", &s).unwrap(), QueryPlan::TopK { k: 5 });
        assert_eq!(
            parse_plan("topk:12", &s).unwrap(),
            QueryPlan::TopK { k: 12 }
        );
        assert_eq!(
            parse_plan("marginal:0,2", &s).unwrap(),
            QueryPlan::Marginal { keep: vec![0, 2] }
        );
        assert_eq!(
            parse_plan("2..5,*,10..30", &s).unwrap(),
            QueryPlan::Range {
                lo: vec![2, 0, 10],
                hi: vec![5, 20, 30],
            }
        );
    }

    #[test]
    fn drill_specs_parse_against_the_coarsened_domain() {
        let s = Shape::new(vec![16, 16]).unwrap();
        assert_eq!(
            parse_plan("drill:2:total", &s).unwrap(),
            QueryPlan::DrillDown {
                level: 2,
                plan: Box::new(QueryPlan::Total),
            }
        );
        // `level:` is a synonym, and keywords stay case-insensitive.
        assert_eq!(
            parse_plan("Level:1:MARGINAL:0", &s).unwrap(),
            QueryPlan::DrillDown {
                level: 1,
                plan: Box::new(QueryPlan::Marginal { keep: vec![0] }),
            }
        );
        // Range clauses address the coarse cells: level 2 of 16×16 is
        // 4×4, so `0..4` spans the whole coarse axis…
        assert_eq!(
            parse_plan("drill:2:0..4,*", &s).unwrap(),
            QueryPlan::DrillDown {
                level: 2,
                plan: Box::new(QueryPlan::Range {
                    lo: vec![0, 0],
                    hi: vec![4, 4],
                }),
            }
        );
        // …and a leaf-sized range is out of the coarse domain.
        assert!(parse_plan("drill:2:0..16,*", &s).is_err());
    }

    #[test]
    fn bad_drill_specs_are_named_errors() {
        let s = Shape::new(vec![16, 16]).unwrap();
        for bad in [
            "drill:",                // no level, no inner spec
            "drill:2",               // no inner spec
            "drill:x:total",         // bad level
            "drill:9:total",         // past the pyramid root (root is 4)
            "drill:1:top:3",         // top-k cannot drill down
            "drill:1:od:",           // od cannot drill down
            "level:1:drill:0:total", // no nesting
        ] {
            assert!(parse_plan(bad, &s).is_err(), "accepted '{bad}'");
        }
        let err = parse_plan("drill:9:total", &s).unwrap_err();
        assert!(err.0.contains("exceeds the pyramid root"), "{err:?}");
        let err = parse_plan("drill:1:top:3", &s).unwrap_err();
        assert!(err.0.contains("cannot drill down"), "{err:?}");
    }

    #[test]
    fn od_specs_compose_regions() {
        let s = shape();
        let plan = parse_plan("od:o=0..4x0..4; s0=2..6x3..7 ;dest=8..16x8..16", &s).unwrap();
        assert_eq!(
            plan,
            QueryPlan::od()
                .with_origin(Region::new((0, 0), (4, 4)))
                .with_stop(0, Region::new((2, 3), (6, 7)))
                .with_destination(Region::new((8, 8), (16, 16)))
        );
        // A bare od: spec is the full-extent OD query.
        assert_eq!(parse_plan("od:", &s).unwrap(), QueryPlan::od());
    }

    #[test]
    fn bad_plan_specs_are_named_errors() {
        let s = shape();
        for bad in [
            "top:x",
            "top:",
            "marginal:a",
            "marginal:",
            "od:o=0..4",       // region missing the y axis
            "od:o=0..4x0..b",  // malformed bound
            "od:q=0..4x0..4",  // unknown leg
            "od:o0..4x0..4",   // missing '='
            "od:sx=0..4x0..4", // bad stop index
        ] {
            assert!(parse_plan(bad, &s).is_err(), "accepted '{bad}'");
        }
    }
}
