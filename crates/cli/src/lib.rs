//! # dpod-cli
//!
//! Library backing the `dpod` command-line tool — the curator/analyst
//! workflow of the paper's system model (Fig. 1) as four commands:
//!
//! ```text
//! dpod generate --city denver --trips 50000 --stops 1 --out trips.csv
//! dpod sanitize --input trips.csv --cells 10 --epsilon 0.5 \
//!               --mechanism daf-entropy --out release.json
//! dpod inspect  --release release.json
//! dpod query    --release release.json --range '0..4,*,3..5,*,*,*'
//! ```
//!
//! Trajectory CSV: one trip per line, `x0,y0,x1,y1,…` unit-square
//! coordinates, origin first, destination last, the same number of points
//! on every line. Releases are [`dpod_core::PublishedRelease`] JSON.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod commands;
pub mod csv;
pub mod rangespec;
pub mod registry;

/// CLI-level error: a message for the user plus a suggestion of usage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<String> for CliError {
    fn from(s: String) -> Self {
        CliError(s)
    }
}

impl From<&str> for CliError {
    fn from(s: &str) -> Self {
        CliError(s.to_string())
    }
}
