//! The four CLI commands as pure(ish) library functions: file IO in, file
//! IO out, no process exits — the binary is a thin wrapper and the test
//! suite drives these directly.

use crate::{csv, rangespec, registry, CliError};
use dpod_core::{PublishedRelease, ReleaseBody};
use dpod_data::{City, OdMatrixBuilder, TrajectoryConfig};
use dpod_dp::Epsilon;
use dpod_fmatrix::Shape;
use dpod_obs::HistogramSnapshot;
use dpod_query::{plan, Answer, QueryPlan, ReleaseIndex};
use dpod_serve::protocol::{Request, Response};
use dpod_serve::{
    series, Catalog, FrontEnd, MetricsExporter, Server, ServerHandle, SpawnOptions, WireMode,
};
use serde::Serialize;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// `dpod generate`: writes a synthetic trajectory CSV.
pub struct GenerateArgs {
    /// City archetype name (`newyork`, `denver`, `detroit`).
    pub city: String,
    /// Number of trips.
    pub trips: usize,
    /// Intermediate stops per trip.
    pub stops: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Runs `generate`, returning the CSV text (the binary writes it out).
///
/// # Errors
/// [`CliError`] for unknown city names.
pub fn generate(args: &GenerateArgs) -> Result<String, CliError> {
    let city = match args
        .city
        .to_ascii_lowercase()
        .replace([' ', '_', '-'], "")
        .as_str()
    {
        "newyork" | "ny" => City::NewYork,
        "denver" => City::Denver,
        "detroit" => City::Detroit,
        other => {
            return Err(CliError(format!(
                "unknown city '{other}'; valid: newyork, denver, detroit"
            )))
        }
    };
    let mut rng = dpod_dp::seeded_rng(args.seed);
    let trips =
        TrajectoryConfig::with_stops(args.stops).generate(&city.model(), args.trips, &mut rng);
    Ok(csv::to_csv(&trips))
}

/// `dpod sanitize`: trajectory CSV → OD matrix → DP release JSON.
pub struct SanitizeArgs {
    /// Grid cells per spatial axis.
    pub cells: usize,
    /// Total privacy budget ε.
    pub epsilon: f64,
    /// Mechanism CLI name (see [`registry::mechanism_names`]).
    pub mechanism: String,
    /// RNG seed.
    pub seed: u64,
}

/// Runs `sanitize` on CSV text, returning the release JSON.
///
/// The stop count is inferred from the CSV arity (`points − 2`).
///
/// # Errors
/// [`CliError`] for malformed CSV, unknown mechanisms, invalid ε, or
/// domains too large to densify.
pub fn sanitize(csv_text: &str, args: &SanitizeArgs) -> Result<String, CliError> {
    let release = sanitize_to_release(csv_text, args)?;
    serde_json::to_string_pretty(&release).map_err(|e| CliError(e.to_string()))
}

/// The shared curator pipeline: CSV → OD matrix → DP release artifact.
///
/// # Errors
/// Same as [`sanitize`].
pub fn sanitize_to_release(
    csv_text: &str,
    args: &SanitizeArgs,
) -> Result<PublishedRelease, CliError> {
    let trips = csv::from_csv(csv_text)?;
    if trips.is_empty() {
        return Err("input contains no trajectories".into());
    }
    let stops = trips[0].points.len() - 2;
    let builder = OdMatrixBuilder::new(args.cells);
    let matrix = builder.build_dense(&trips, stops).map_err(CliError)?;
    let mechanism = registry::mechanism_by_name(&args.mechanism)?;
    let epsilon = Epsilon::new(args.epsilon).map_err(|e| CliError(format!("bad epsilon: {e}")))?;
    let mut rng = dpod_dp::seeded_rng(args.seed);
    let sanitized = mechanism
        .sanitize(&matrix, epsilon, &mut rng)
        .map_err(|e| CliError(format!("sanitization failed: {e}")))?;
    Ok(PublishedRelease::from_sanitized(&sanitized))
}

/// `dpod publish`: sanitize and install the release into a serving
/// catalog directory under `name` (creating or updating the directory's
/// `DPRL` frames and manifest). Returns a confirmation line.
///
/// With `epoch`, the release lands as epoch `T` of the `name` series
/// (catalog entry `name@T`, monotonic per series); `retain` then
/// applies the sliding retention window, tombstoning every epoch older
/// than the newest `K` before the directory is saved.
///
/// With `series_budget`, the publish is refused outright — nothing
/// written — when the series' *active* ε (live epochs after this
/// publish and after the `retain` prune) would exceed the ceiling.
/// Retention refunds count: a sliding window whose retired epochs give
/// back their ε can publish forever under a fixed ceiling, which is the
/// continual-release accounting the epoch ledgers implement.
///
/// # Errors
/// [`CliError`] for pipeline failures, catalog IO, an epoch that is not
/// live and not past the series frontier, `retain` or `series_budget`
/// without `epoch`, or a publish that would break the series ε ceiling.
pub fn publish(
    csv_text: &str,
    args: &SanitizeArgs,
    name: &str,
    catalog_dir: &Path,
    epoch: Option<u64>,
    retain: Option<usize>,
    series_budget: Option<f64>,
) -> Result<String, CliError> {
    if name.is_empty() {
        return Err("release name must not be empty".into());
    }
    if retain.is_some() && epoch.is_none() {
        return Err("--retain needs --epoch (retention is per epoch series)".into());
    }
    if series_budget.is_some() && epoch.is_none() {
        return Err("--series-budget needs --epoch (the ceiling is per epoch series)".into());
    }
    let release = sanitize_to_release(csv_text, args)?;
    let catalog = if catalog_dir.is_dir() {
        Catalog::load_dir(catalog_dir).map_err(|e| CliError(e.0))?
    } else {
        Catalog::new()
    };
    if let (Some(budget), Some(t)) = (series_budget, epoch) {
        check_series_budget(&catalog, name, t, release.epsilon, retain, budget)?;
    }
    let (label, version, retired) = match epoch {
        None => (
            format!("'{name}'"),
            catalog.publish(name, release),
            Vec::new(),
        ),
        Some(t) => {
            series::validate_publish_epoch(&catalog, name, t).map_err(|e| CliError(e.0))?;
            let version = catalog.publish(&series::epoch_entry_name(name, t), release);
            let retired: Vec<u64> = match retain {
                None => Vec::new(),
                Some(k) => {
                    let epochs = series::series_epochs(&catalog, name);
                    let expired = series::expired_epochs(&epochs, k).map_err(|e| CliError(e.0))?;
                    for info in &expired {
                        catalog.remove(&info.entry.name);
                    }
                    expired.iter().map(|i| i.epoch).collect()
                }
            };
            (format!("'{name}' epoch {t}"), version, retired)
        }
    };
    let report = catalog.save_dir(catalog_dir).map_err(|e| CliError(e.0))?;
    let total = report.live();
    let retirement = if retired.is_empty() {
        String::new()
    } else {
        format!(
            "; retired epoch{} {}",
            if retired.len() == 1 { "" } else { "s" },
            retired
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        )
    };
    Ok(format!(
        "published {label} v{version} to {} ({total} release{}, {} frame{} written{retirement})\n",
        catalog_dir.display(),
        if total == 1 { "" } else { "s" },
        report.written,
        if report.written == 1 { "" } else { "s" },
    ))
}

/// Enforces `--series-budget`: simulates the live epoch set *after*
/// publishing ε at epoch `t` and after the `retain`-newest prune, and
/// refuses (before anything is mutated or written) when the surviving
/// active ε would exceed `budget`. The small tolerance absorbs the
/// float summation of many per-epoch ε values at an exact ceiling.
fn check_series_budget(
    catalog: &Catalog,
    name: &str,
    t: u64,
    epsilon: f64,
    retain: Option<usize>,
    budget: f64,
) -> Result<(), CliError> {
    let mut sim: Vec<(u64, f64)> = series::series_epochs(catalog, name)
        .iter()
        .map(|info| (info.epoch, info.entry.release.epsilon))
        .collect();
    // A republish of a live epoch replaces its ε; a new epoch adds one.
    match sim.iter_mut().find(|(e, _)| *e == t) {
        Some(slot) => slot.1 = epsilon,
        None => {
            sim.push((t, epsilon));
            sim.sort_by_key(|(e, _)| *e);
        }
    }
    if let Some(k) = retain.filter(|&k| k > 0) {
        if sim.len() > k {
            let cut = sim.len() - k;
            sim.drain(..cut);
        }
    }
    let active: f64 = sim.iter().map(|(_, eps)| eps).sum();
    if active > budget + 1e-12 {
        return Err(CliError(format!(
            "refusing publish: series '{name}' active \u{3b5} would be {active} \
             ({} live epoch{}), over the --series-budget ceiling {budget}",
            sim.len(),
            if sim.len() == 1 { "" } else { "s" },
        )));
    }
    Ok(())
}

/// `dpod serve` configuration.
pub struct ServeArgs {
    /// Catalog directory produced by `dpod publish`.
    pub catalog: std::path::PathBuf,
    /// Bind address (e.g. `127.0.0.1:7878`; port 0 picks a free port).
    pub addr: String,
    /// Worker threads in the connection pool.
    pub workers: usize,
    /// Rebuild-cache budget in mebibytes (shared between matrix
    /// rebuilds and plan indexes).
    pub cache_mb: usize,
    /// Per-release cap, in mebibytes, on the marginal tables a plan
    /// index may memoize (keep-sets past the cap are answered per
    /// query, uncached).
    pub index_mb: usize,
    /// Accepted encodings (`auto` sniffs per connection).
    pub wire: WireMode,
    /// Serving core (`--front-end event|pool`); `None` resolves to the
    /// `DPOD_FRONT_END` environment variable, then the event loop.
    pub front_end: Option<FrontEnd>,
    /// Event-loop shards (`--event-loops`); `0` resolves to the
    /// `DPOD_EVENT_LOOPS` environment variable, then `min(4, cores/2)`.
    pub event_loops: usize,
    /// Accept-queue depth requested for every listener
    /// (`--listen-backlog`; the kernel clamps to `somaxconn`).
    pub listen_backlog: i32,
    /// Bind address for the Prometheus-text `/metrics` exposition
    /// (`--metrics-addr`); `None` disables the exporter.
    pub metrics_addr: Option<String>,
    /// Retention sweep period in seconds (`--retain-ttl`); `None`
    /// disables the serve-side retention timer.
    pub retain_ttl: Option<u64>,
    /// Epochs each series keeps under the retention timer
    /// (`--retain-last`, default 1; must be ≥ 1 when `--retain-ttl` is
    /// set).
    pub retain_last: usize,
}

/// Starts the serving stack for `dpod serve`, returning the running
/// handle, the shared server, and — when `metrics_addr` is set — the
/// `/metrics` exporter (the binary parks; tests drive it). The exporter
/// handle must be kept alive for the scrape endpoint to stay up.
///
/// # Errors
/// [`CliError`] when the catalog cannot be loaded or either address
/// cannot be bound.
pub fn start_server(
    args: &ServeArgs,
) -> Result<(ServerHandle, Arc<Server>, Option<MetricsExporter>), CliError> {
    if let Some(secs) = args.retain_ttl {
        if secs == 0 {
            return Err("--retain-ttl must be at least 1 second".into());
        }
        if args.retain_last == 0 {
            return Err(
                "--retain-last must be at least 1 (a series keeps its newest epoch)".into(),
            );
        }
    }
    let catalog = Catalog::load_dir(&args.catalog).map_err(|e| CliError(e.0))?;
    if catalog.is_empty() {
        return Err(CliError(format!(
            "catalog {} holds no releases; run `dpod publish` first",
            args.catalog.display()
        )));
    }
    let server = Arc::new(Server::with_marginal_cap(
        Arc::new(catalog),
        args.cache_mb.saturating_mul(1 << 20),
        args.index_mb.saturating_mul(1 << 20),
    ));
    let handle = dpod_serve::spawn_with(
        Arc::clone(&server),
        args.addr.as_str(),
        SpawnOptions {
            workers: args.workers,
            wire: args.wire,
            front_end: args.front_end,
            event_loops: args.event_loops,
            listen_backlog: args.listen_backlog,
            ..SpawnOptions::default()
        },
    )
    .map_err(|e| CliError(format!("cannot bind {}: {e}", args.addr)))?;
    let exporter = match &args.metrics_addr {
        Some(addr) => Some(
            dpod_serve::spawn_metrics_exporter(Arc::clone(&server), addr.as_str())
                .map_err(|e| CliError(format!("cannot bind metrics endpoint {addr}: {e}")))?,
        ),
        None => None,
    };
    if let Some(secs) = args.retain_ttl {
        // Validated ≥ 1 above. Daemon thread holding only a weak server
        // reference; it dies with the server, so the handle needs no
        // keeping.
        let _ = dpod_serve::spawn_retention_timer(
            &server,
            std::time::Duration::from_secs(secs),
            args.retain_last,
        );
    }
    Ok((handle, server, exporter))
}

/// One periodic operator line for `dpod serve`: traffic plus both cache
/// hit-rates (matrix rebuilds and plan indexes) and the cumulative
/// index build time — read from the same `Stats` response analysts see,
/// whose hit-rates arrive precomputed.
pub fn stats_line(server: &Server) -> String {
    let Response::Stats { stats } = server.handle(&Request::Stats) else {
        return "stats unavailable".into();
    };
    let partial_lookups = stats.partial_hits + stats.partial_misses;
    let partial_rate = if partial_lookups == 0 {
        0.0
    } else {
        stats.partial_hits as f64 / partial_lookups as f64
    };
    let pyramid_lookups = stats.pyramid_hits + stats.pyramid_misses;
    let pyramid_rate = if pyramid_lookups == 0 {
        0.0
    } else {
        stats.pyramid_hits as f64 / pyramid_lookups as f64
    };
    format!(
        "served {} queries | conns: {} open / {} accepted | matrix cache: {} entries, \
         {:.1} MiB, {:.0}% hit | index: {} built, {:.0}% hit, {:.1} ms building | \
         epochs: {} series, {} window partials, {:.0}% hit | pyramid: {} levels, \
         {:.0}% hit",
        stats.queries,
        stats.open_connections,
        stats.accepted_connections,
        stats.cache_entries,
        stats.cache_bytes as f64 / (1 << 20) as f64,
        100.0 * stats.cache_hit_rate,
        stats.index_entries,
        100.0 * stats.index_hit_rate,
        stats.index_build_nanos as f64 / 1e6,
        stats.series,
        stats.partial_entries,
        100.0 * partial_rate,
        stats.pyramid_entries,
        100.0 * pyramid_rate,
    )
}

/// Interval-aware operator stats for the `dpod serve` loop: each
/// [`line`](Self::line) call appends per-interval rates (queries/s and
/// requests/s since the previous call) to the cumulative
/// [`stats_line`], so a minute of quiet reads `0.0 q/s` instead of a
/// slowly-decaying lifetime average.
pub struct StatsTracker {
    last_at: Instant,
    last_queries: u64,
    last_requests: u64,
}

impl Default for StatsTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl StatsTracker {
    /// Starts an interval at "now" with zero traffic seen.
    pub fn new() -> Self {
        StatsTracker {
            last_at: Instant::now(),
            last_queries: 0,
            last_requests: 0,
        }
    }

    /// One operator line: the cumulative [`stats_line`] plus this
    /// interval's query and request rates. Resets the interval.
    pub fn line(&mut self, server: &Server) -> String {
        let queries = server.queries_answered();
        let requests = server.metrics().requests_counted();
        let secs = self.last_at.elapsed().as_secs_f64().max(1e-9);
        let q_rate = queries.saturating_sub(self.last_queries) as f64 / secs;
        let r_rate = requests.saturating_sub(self.last_requests) as f64 / secs;
        self.last_at = Instant::now();
        self.last_queries = queries;
        self.last_requests = requests;
        format!(
            "{} | interval: {q_rate:.1} queries/s, {r_rate:.1} requests/s",
            stats_line(server)
        )
    }
}

/// `dpod replay` configuration.
pub struct ReplayArgs {
    /// NDJSON file: one [`QueryPlan`] per line.
    pub file: std::path::PathBuf,
    /// Release to replay against: a catalog name with `connect`, a
    /// release JSON path otherwise.
    pub release: String,
    /// Replay against a running server at this address instead of a
    /// local release file.
    pub connect: Option<String>,
    /// With `connect`: use the `DPRB` binary encoding.
    pub binary: bool,
    /// Local replays only: execute through the cold `ScanBackend`
    /// instead of a prepared [`ReleaseIndex`] (for A/B runs; answers
    /// are bit-identical either way).
    pub cold: bool,
    /// Write each plan's response (answer or error) as one JSON line,
    /// enabling bit-identical diffing between replays.
    pub answers: Option<std::path::PathBuf>,
    /// Remote replays: fan the stream out over this many concurrent
    /// client connections (round-robin), turning the replay into a load
    /// generator. `1` preserves the classic single-connection replay.
    pub connections: usize,
    /// Write a machine-readable JSON [`SloReport`] (throughput plus
    /// histogram-backed latency quantiles, per connection and merged)
    /// here after the replay.
    pub slo_report: Option<std::path::PathBuf>,
}

/// How a replay turns one plan into one response (local executor or a
/// live connection). `Send` so `--connections` can run one per thread.
type PlanResponder<'a> = Box<dyn FnMut(&QueryPlan) -> Result<Response, CliError> + Send + 'a>;

/// One replay connection over the chosen encoding: a `DPRB`
/// [`wire::Client`](dpod_serve::wire::Client) or a hand-rolled NDJSON
/// request/response loop, both yielding one [`Response`] per plan.
fn remote_responder(
    addr: &str,
    release: &str,
    binary: bool,
) -> Result<PlanResponder<'static>, CliError> {
    if binary {
        let mut client = dpod_serve::wire::Client::connect(addr)
            .map_err(|e| CliError(format!("cannot connect to {addr}: {e}")))?;
        let release = release.to_string();
        Ok(Box::new(move |plan| {
            client
                .request(&Request::Plan {
                    release: release.clone(),
                    plan: plan.clone(),
                })
                .map_err(|e| CliError(e.0))
        }))
    } else {
        use std::io::{BufRead, BufReader, BufWriter, Write};
        let stream = std::net::TcpStream::connect(addr)
            .map_err(|e| CliError(format!("cannot connect to {addr}: {e}")))?;
        stream.set_nodelay(true).ok();
        let mut reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| CliError(format!("socket: {e}")))?,
        );
        let mut writer = BufWriter::new(stream);
        let release = release.to_string();
        Ok(Box::new(move |plan| {
            let req = Request::Plan {
                release: release.clone(),
                plan: plan.clone(),
            };
            let mut line = serde_json::to_string(&req).map_err(|e| CliError(e.to_string()))?;
            line.push('\n');
            writer
                .write_all(line.as_bytes())
                .and_then(|()| writer.flush())
                .map_err(|e| CliError(format!("send: {e}")))?;
            let mut answer = String::new();
            reader
                .read_line(&mut answer)
                .map_err(|e| CliError(format!("receive: {e}")))?;
            serde_json::from_str(answer.trim()).map_err(|e| CliError(format!("bad response: {e}")))
        }))
    }
}

/// `dpod replay`: re-runs a recorded stream of [`QueryPlan`]s against a
/// release and reports latency/throughput. The stream is NDJSON — one
/// plan per line, exactly the `plan` field of a `Plan` request — so a
/// production query log can be replayed verbatim against a new release,
/// a new server build, or both execution backends. Because sanitized
/// releases are static, a replay is deterministic: the same stream
/// against the same release version produces bit-identical answers,
/// warm or cold (a test pins this).
///
/// # Errors
/// [`CliError`] for unreadable files, malformed plan lines, connection
/// failures, or invalid release artifacts. Per-plan *execution* errors
/// do not abort the replay; they are counted (and recorded in the
/// answers file when requested).
pub fn replay(args: &ReplayArgs) -> Result<String, CliError> {
    if args.cold && args.connect.is_some() {
        // Refuse rather than silently measure the server's (indexed)
        // path and label it cold in an A/B comparison.
        return Err(
            "--cold applies to local replays only; a remote server picks its own backend".into(),
        );
    }
    if args.connections == 0 {
        return Err("--connections must be at least 1".into());
    }
    if args.connections > 1 && args.connect.is_none() {
        return Err("--connections applies to remote replays; add --connect HOST:PORT".into());
    }
    if args.connections > 1 && args.answers.is_some() {
        // Interleaved responses from concurrent connections have no
        // stable order to bit-diff against.
        return Err("--answers requires --connections 1 (answers are order-sensitive)".into());
    }
    let text = std::fs::read_to_string(&args.file)
        .map_err(|e| CliError(format!("cannot read {}: {e}", args.file.display())))?;
    let mut plans: Vec<QueryPlan> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let plan: QueryPlan = serde_json::from_str(line.trim())
            .map_err(|e| CliError(format!("line {}: bad plan: {e}", lineno + 1)))?;
        plans.push(plan);
    }
    if plans.is_empty() {
        return Err(CliError(format!(
            "{} contains no plans",
            args.file.display()
        )));
    }
    if args.connections > 1 {
        let addr = args.connect.as_deref().expect("validated above");
        return replay_fan_out(
            addr,
            &args.release,
            args.binary,
            args.connections,
            &plans,
            args.slo_report.as_deref(),
        );
    }

    let mut respond: PlanResponder = match &args.connect {
        Some(addr) => remote_responder(addr, &args.release, args.binary)?,
        None => {
            let release = load_release(Path::new(&args.release))?;
            let sanitized = Arc::new(
                release
                    .into_sanitized()
                    .map_err(|e| CliError(format!("invalid release: {e}")))?,
            );
            let index = (!args.cold).then(|| ReleaseIndex::new(Arc::clone(&sanitized)));
            Box::new(move |plan| {
                let executed = match &index {
                    Some(ix) => plan::execute_with(ix, plan),
                    None => plan::execute(&sanitized, plan),
                };
                Ok(match executed {
                    Ok(answer) => Response::Answer { answer },
                    Err(e) => Response::Error { message: e.0 },
                })
            })
        }
    };

    // Stream answers to disk as they arrive: a production-scale stream
    // of aggregate plans produces multi-KB responses per line, so
    // accumulating them in memory would grow without bound on exactly
    // the large-workload use case this tool targets.
    let mut answers_out = match &args.answers {
        Some(path) => Some(std::io::BufWriter::new(
            std::fs::File::create(path)
                .map_err(|e| CliError(format!("cannot write {}: {e}", path.display())))?,
        )),
        None => None,
    };
    let mut report = ConnReport::new();
    let started = Instant::now();
    for plan in &plans {
        let t0 = Instant::now();
        let response = respond(plan)?;
        report
            .latency
            .record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        match &response {
            Response::Answer { answer } => report.leaves += answer.units(),
            Response::Error { .. } => report.errors += 1,
            other => return Err(CliError(format!("unexpected response {other:?}"))),
        }
        if let Some(out) = &mut answers_out {
            use std::io::Write;
            let line = serde_json::to_string(&response).map_err(|e| CliError(e.to_string()))?;
            out.write_all(line.as_bytes())
                .and_then(|()| out.write_all(b"\n"))
                .map_err(|e| CliError(format!("cannot write answers: {e}")))?;
        }
    }
    let elapsed = started.elapsed().as_secs_f64();

    if let Some(mut out) = answers_out {
        use std::io::Write;
        out.flush()
            .map_err(|e| CliError(format!("cannot write answers: {e}")))?;
    }
    let slo = build_slo_report(std::slice::from_ref(&report), plans.len(), elapsed);
    if let Some(path) = &args.slo_report {
        write_slo_report(path, &slo)?;
    }
    Ok(format!(
        "replayed {} plans ({} leaves, {} errors) in {elapsed:.3}s: {:.0} plans/s\n\
         latency: mean {:.3} ms, p50 {:.3} ms, p99 {:.3} ms\n",
        slo.plans,
        slo.leaves,
        slo.errors,
        slo.plans_per_second,
        slo.latency.mean_ms,
        slo.latency.p50_ms,
        slo.latency.p99_ms,
    ))
}

/// Latency quantiles of one replay population, in milliseconds, from a
/// log-bucketed [`HistogramSnapshot`]: each quantile is an upper bound
/// on the true sample, within 1/16 of it (see `dpod_obs`). Quantiles
/// are a pure function of the bucket counts, so a replay report is
/// deterministic for a given set of samples regardless of arrival
/// order or connection interleaving.
#[derive(Debug, Clone, Serialize)]
pub struct SloLatency {
    /// Samples in this population.
    pub count: u64,
    /// Exact mean (from the histogram's running sum, not the buckets).
    pub mean_ms: f64,
    /// Median upper bound.
    pub p50_ms: f64,
    /// 90th-percentile upper bound.
    pub p90_ms: f64,
    /// 99th-percentile upper bound.
    pub p99_ms: f64,
    /// 99.9th-percentile upper bound.
    pub p999_ms: f64,
    /// Upper bound of the slowest sample.
    pub max_ms: f64,
}

impl SloLatency {
    fn from_snapshot(snap: &HistogramSnapshot) -> Self {
        let ms = |ns: u64| ns as f64 / 1e6;
        SloLatency {
            count: snap.count(),
            mean_ms: snap.mean() / 1e6,
            p50_ms: ms(snap.quantile(0.50)),
            p90_ms: ms(snap.quantile(0.90)),
            p99_ms: ms(snap.quantile(0.99)),
            p999_ms: ms(snap.quantile(0.999)),
            max_ms: ms(snap.max()),
        }
    }
}

/// The machine-readable replay artifact `dpod replay --slo-report`
/// writes: one JSON document with throughput, merged latency quantiles,
/// and the per-connection breakdown (one entry per connection; a
/// single-connection replay has exactly one).
#[derive(Debug, Serialize)]
pub struct SloReport {
    /// Plans replayed.
    pub plans: usize,
    /// Leaf aggregates the answers covered.
    pub leaves: u64,
    /// Plans answered with an error.
    pub errors: usize,
    /// Wall-clock seconds for the whole replay.
    pub wall_seconds: f64,
    /// `plans / wall_seconds`.
    pub plans_per_second: f64,
    /// Concurrent client connections used.
    pub connections: usize,
    /// Quantiles over every connection's samples merged.
    pub latency: SloLatency,
    /// Per-connection quantiles, in connection order.
    pub per_connection: Vec<SloLatency>,
}

fn write_slo_report(path: &Path, report: &SloReport) -> Result<(), CliError> {
    let json = serde_json::to_string_pretty(report).map_err(|e| CliError(e.to_string()))?;
    std::fs::write(path, json)
        .map_err(|e| CliError(format!("cannot write {}: {e}", path.display())))
}

/// Per-connection measurements from one replay connection: a latency
/// histogram instead of raw samples, so a million-plan replay costs a
/// fixed few KiB per connection and the merged quantiles are
/// deterministic.
struct ConnReport {
    latency: HistogramSnapshot,
    leaves: u64,
    errors: usize,
}

impl ConnReport {
    fn new() -> Self {
        ConnReport {
            latency: HistogramSnapshot::empty(),
            leaves: 0,
            errors: 0,
        }
    }
}

/// Merges per-connection reports into the aggregate totals and the
/// whole-replay latency snapshot.
fn merge_reports(reports: &[ConnReport]) -> (HistogramSnapshot, u64, usize) {
    let mut merged = HistogramSnapshot::empty();
    let (mut leaves, mut errors) = (0u64, 0usize);
    for report in reports {
        merged.merge(&report.latency);
        leaves += report.leaves;
        errors += report.errors;
    }
    (merged, leaves, errors)
}

fn build_slo_report(reports: &[ConnReport], plans: usize, elapsed: f64) -> SloReport {
    let (merged, leaves, errors) = merge_reports(reports);
    SloReport {
        plans,
        leaves,
        errors,
        wall_seconds: elapsed,
        plans_per_second: plans as f64 / elapsed,
        connections: reports.len(),
        latency: SloLatency::from_snapshot(&merged),
        per_connection: reports
            .iter()
            .map(|r| SloLatency::from_snapshot(&r.latency))
            .collect(),
    }
}

/// `dpod replay --connections N`: the load-generator path. The recorded
/// stream is split round-robin over `n` concurrent connections (each a
/// request/response client, like a live dashboard), proving a serving
/// core scales past its worker count: aggregate plans/s and the spread
/// of per-connection p99 latencies are reported together.
///
/// The generator itself is readiness-driven: **one** thread multiplexes
/// all `n` nonblocking sockets through the `polling` shim (as `wrk`
/// does), so driving 512 connections costs one client thread, not 512 —
/// at high fan-out a thread-per-connection generator measures its own
/// scheduler churn more than the server. Where epoll is unavailable it
/// falls back to a thread per connection.
fn replay_fan_out(
    addr: &str,
    release: &str,
    binary: bool,
    n: usize,
    plans: &[QueryPlan],
    slo_path: Option<&Path>,
) -> Result<String, CliError> {
    let started = Instant::now();
    let reports: Vec<ConnReport> = match polling::Poller::new() {
        Ok(poller) => fan_out_multiplexed(poller, addr, release, binary, n, plans)?,
        Err(_) => fan_out_threaded(addr, release, binary, n, plans)?,
    };
    let elapsed = started.elapsed().as_secs_f64();
    let slo = build_slo_report(&reports, plans.len(), elapsed);
    if let Some(path) = slo_path {
        write_slo_report(path, &slo)?;
    }
    Ok(fan_out_summary(&slo))
}

/// Renders the fan-out operator summary from the [`SloReport`]. The
/// per-connection p99 spread comes from the same histogram snapshots the
/// report carries, so it is a deterministic function of the recorded
/// samples — bucketized quantiles do not wobble with merge or arrival
/// order the way raw-sample index math did.
fn fan_out_summary(slo: &SloReport) -> String {
    let (p99_min, p99_max) = slo
        .per_connection
        .iter()
        .filter(|l| l.count > 0)
        .fold((f64::INFINITY, 0.0f64), |(lo, hi), l| {
            (lo.min(l.p99_ms), hi.max(l.p99_ms))
        });
    format!(
        "replayed {} plans over {} connections ({} leaves, {} errors) in \
         {:.3}s: {:.0} plans/s aggregate\n\
         latency: mean {:.3} ms, p50 {:.3} ms, p99 {:.3} ms; \
         per-connection p99 {p99_min:.3}..{p99_max:.3} ms\n",
        slo.plans,
        slo.connections,
        slo.leaves,
        slo.errors,
        slo.wall_seconds,
        slo.plans_per_second,
        slo.latency.mean_ms,
        slo.latency.p50_ms,
        slo.latency.p99_ms,
    )
}

/// One multiplexed load-generator connection: a nonblocking socket plus
/// the buffers to assemble its responses incrementally. Connection `t`
/// replays plan indexes `t, t+n, t+2n, …` strictly request/response.
struct FanConn {
    stream: std::net::TcpStream,
    inbuf: Vec<u8>,
    inpos: usize,
    outbuf: Vec<u8>,
    outpos: usize,
    /// When the in-flight request was issued (`None` between requests).
    sent_at: Option<Instant>,
    /// Global index of the next plan this connection will send.
    next: usize,
    write_armed: bool,
    done: bool,
    report: ConnReport,
}

impl FanConn {
    fn outstanding(&self) -> usize {
        self.outbuf.len() - self.outpos
    }
}

/// The readiness-driven fan-out: one thread, `n` nonblocking sockets,
/// one poller. Each connection keeps exactly one request in flight.
fn fan_out_multiplexed(
    poller: polling::Poller,
    addr: &str,
    release: &str,
    binary: bool,
    n: usize,
    plans: &[QueryPlan],
) -> Result<Vec<ConnReport>, CliError> {
    use std::io::Read;
    use std::os::fd::AsRawFd;

    let encode = |plan: &QueryPlan, out: &mut Vec<u8>| -> Result<(), CliError> {
        let request = Request::Plan {
            release: release.to_string(),
            plan: plan.clone(),
        };
        if binary {
            let body = dpod_serve::wire::encode_request(&request);
            dpod_serve::wire::write_frame(out, &body).map_err(|e| CliError(e.0))
        } else {
            let line = serde_json::to_string(&request).map_err(|e| CliError(e.to_string()))?;
            out.extend_from_slice(line.as_bytes());
            out.push(b'\n');
            Ok(())
        }
    };

    // Nonblocking write of whatever is queued; `Ok(false)` when the
    // connection died under us.
    fn flush(conn: &mut FanConn) -> Result<bool, CliError> {
        use std::io::Write;
        while conn.outstanding() > 0 {
            match (&conn.stream).write(&conn.outbuf[conn.outpos..]) {
                Ok(0) => return Ok(false),
                Ok(written) => conn.outpos += written,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(CliError(format!("send: {e}"))),
            }
        }
        if conn.outstanding() == 0 {
            conn.outbuf.clear();
            conn.outpos = 0;
        }
        Ok(true)
    }

    let mut conns: Vec<FanConn> = Vec::with_capacity(n);
    for t in 0..n {
        let stream = std::net::TcpStream::connect(addr)
            .map_err(|e| CliError(format!("cannot connect to {addr}: {e}")))?;
        stream.set_nodelay(true).ok();
        let conn = FanConn {
            stream,
            inbuf: Vec::new(),
            inpos: 0,
            outbuf: Vec::new(),
            outpos: 0,
            sent_at: None,
            next: t,
            write_armed: false,
            done: t >= plans.len(),
            report: ConnReport::new(),
        };
        conns.push(conn);
    }
    // Issue the opening requests only after every socket is connected:
    // interleaving connects with live traffic makes each blocking
    // `connect` contend with the server answering the earlier
    // connections, stretching setup from milliseconds to seconds at
    // high fan-out.
    for (t, conn) in conns.iter_mut().enumerate() {
        if conn.done {
            continue;
        }
        if binary {
            conn.outbuf.extend_from_slice(dpod_serve::wire::WIRE_MAGIC);
            conn.outbuf.push(dpod_serve::wire::WIRE_VERSION);
        }
        conn.sent_at = Some(Instant::now());
        encode(&plans[t], &mut conn.outbuf)?;
        conn.stream
            .set_nonblocking(true)
            .map_err(|e| CliError(format!("socket: {e}")))?;
        if !flush(conn)? {
            return Err("server closed a replay connection mid-stream".into());
        }
        let interest = if conn.outstanding() > 0 {
            conn.write_armed = true;
            polling::Interest::BOTH
        } else {
            polling::Interest::READABLE
        };
        poller
            .add(conn.stream.as_raw_fd(), t as u64, interest)
            .map_err(|e| CliError(format!("poller: {e}")))?;
    }

    let mut remaining = conns.iter().filter(|c| !c.done).count();
    let mut events = Vec::new();
    let mut scratch = vec![0u8; 64 << 10];
    while remaining > 0 {
        poller
            .wait(&mut events, Some(std::time::Duration::from_millis(500)))
            .map_err(|e| CliError(format!("poller: {e}")))?;
        for ev in events.iter().copied() {
            let t = ev.token as usize;
            let conn = &mut conns[t];
            if conn.done {
                continue;
            }
            if ev.writable && !flush(conn)? {
                return Err("server closed a replay connection mid-stream".into());
            }
            if ev.readable {
                loop {
                    match (&conn.stream).read(&mut scratch) {
                        Ok(0) => return Err("server closed a replay connection mid-stream".into()),
                        Ok(got) => {
                            conn.inbuf.extend_from_slice(&scratch[..got]);
                            if got < scratch.len() {
                                break;
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(e) => return Err(CliError(format!("receive: {e}"))),
                    }
                }
                // Assemble every complete response available (at most
                // one in flight, but stay defensive about framing).
                loop {
                    let avail = &conn.inbuf[conn.inpos..];
                    let response = if binary {
                        if avail.len() < 4 {
                            break;
                        }
                        let len =
                            u32::from_le_bytes(avail[..4].try_into().expect("4 bytes")) as usize;
                        if avail.len() < 4 + len {
                            break;
                        }
                        let body = &avail[4..4 + len];
                        let response = dpod_serve::wire::decode_response(body)
                            .map_err(|e| CliError(format!("bad response: {e}")))?;
                        conn.inpos += 4 + len;
                        response
                    } else {
                        let Some(i) = avail.iter().position(|&b| b == b'\n') else {
                            break;
                        };
                        let line = std::str::from_utf8(&avail[..i])
                            .map_err(|e| CliError(format!("bad response: {e}")))?;
                        let response: Response = serde_json::from_str(line.trim())
                            .map_err(|e| CliError(format!("bad response: {e}")))?;
                        conn.inpos += i + 1;
                        response
                    };
                    let t0 = conn
                        .sent_at
                        .take()
                        .ok_or_else(|| CliError("unsolicited response".into()))?;
                    conn.report
                        .latency
                        .record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                    match response {
                        Response::Answer { answer } => conn.report.leaves += answer.units(),
                        Response::Error { .. } => conn.report.errors += 1,
                        other => return Err(CliError(format!("unexpected response {other:?}"))),
                    }
                    conn.next += n;
                    if conn.next < plans.len() {
                        conn.sent_at = Some(Instant::now());
                        encode(&plans[conn.next], &mut conn.outbuf)?;
                        if !flush(conn)? {
                            return Err("server closed a replay connection mid-stream".into());
                        }
                    } else {
                        conn.done = true;
                        remaining -= 1;
                        let _ = poller.delete(conn.stream.as_raw_fd());
                        // Close the socket eagerly (the threaded
                        // generator's drop did this implicitly): a
                        // thread-pool server releases its worker on
                        // EOF, so queued connections get served next
                        // instead of waiting out the idle timeout.
                        let _ = conn.stream.shutdown(std::net::Shutdown::Both);
                        break;
                    }
                }
                if conn.inpos == conn.inbuf.len() {
                    conn.inbuf.clear();
                    conn.inpos = 0;
                }
            }
            // Write interest only while bytes are queued, or EPOLLOUT
            // (level-triggered, almost always ready) would spin the
            // generator.
            if !conn.done {
                let want_write = conn.outstanding() > 0;
                if want_write != conn.write_armed {
                    conn.write_armed = want_write;
                    let interest = if want_write {
                        polling::Interest::BOTH
                    } else {
                        polling::Interest::READABLE
                    };
                    poller
                        .modify(conn.stream.as_raw_fd(), t as u64, interest)
                        .map_err(|e| CliError(format!("poller: {e}")))?;
                }
            }
        }
    }
    Ok(conns.into_iter().map(|c| c.report).collect())
}

/// Thread-per-connection fallback for targets without epoll: same
/// round-robin split, one blocking request/response client per thread.
fn fan_out_threaded(
    addr: &str,
    release: &str,
    binary: bool,
    n: usize,
    plans: &[QueryPlan],
) -> Result<Vec<ConnReport>, CliError> {
    let reports: Vec<Result<ConnReport, CliError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|t| {
                scope.spawn(move || -> Result<ConnReport, CliError> {
                    let mut respond = remote_responder(addr, release, binary)?;
                    let mine = plans.iter().skip(t).step_by(n);
                    let mut report = ConnReport::new();
                    for plan in mine {
                        let t0 = Instant::now();
                        let response = respond(plan)?;
                        report
                            .latency
                            .record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                        match response {
                            Response::Answer { answer } => report.leaves += answer.units(),
                            Response::Error { .. } => report.errors += 1,
                            other => {
                                return Err(CliError(format!("unexpected response {other:?}")))
                            }
                        }
                    }
                    Ok(report)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("replay thread panicked".into()))
            })
            .collect()
    });
    reports.into_iter().collect()
}

/// `dpod query --connect`: answers query specs — classic ranges or the
/// typed algebra (`total`, `top:K`, `marginal:…`, `od:…`) — against a
/// *running* server instead of a local release file, over either
/// encoding.
///
/// The release's domain is fetched via a `List` request first (range
/// specs like `0..4,*` need the axis lengths), then every spec is
/// answered in one request: the legacy `Batch` when every spec is a
/// classic range (so this CLI still talks to pre-algebra servers), a
/// `Plan` (`Many`-batched as needed) once any typed spec appears.
///
/// # Errors
/// [`CliError`] for connection failures, unknown releases, bad specs,
/// or server-side errors.
pub fn remote_query(
    addr: &str,
    release: &str,
    specs: &[String],
    binary: bool,
) -> Result<String, CliError> {
    let transport = |req: &Request| -> Result<Response, CliError> {
        if binary {
            let mut client = dpod_serve::wire::Client::connect(addr)
                .map_err(|e| CliError(format!("cannot connect to {addr}: {e}")))?;
            client.request(req).map_err(|e| CliError(e.0))
        } else {
            ndjson_round_trip(addr, req)
        }
    };
    // One connection per request keeps this helper trivially correct for
    // both encodings; interactive analysts needing throughput should
    // pipeline over `dpod_serve::wire::Client` directly.
    let Response::Releases { releases } = transport(&Request::List)? else {
        return Err("unexpected response to List".into());
    };
    let info = releases
        .iter()
        .find(|r| r.name == release)
        .ok_or_else(|| CliError(format!("unknown release '{release}' on {addr}")))?;
    let shape =
        Shape::new(info.domain.clone()).map_err(|e| CliError(format!("bad domain: {e}")))?;
    let mut plans: Vec<QueryPlan> = specs
        .iter()
        .map(|spec| rangespec::parse_plan(spec, &shape))
        .collect::<Result<_, _>>()?;
    // All-classic-range queries keep speaking the legacy `Batch`
    // request: it answers bit-identically, and it lets this CLI talk to
    // servers that predate the plan algebra.
    if plans.iter().all(|p| matches!(p, QueryPlan::Range { .. })) {
        let ranges = plans
            .into_iter()
            .map(|p| {
                let QueryPlan::Range { lo, hi } = p else {
                    unreachable!("filtered to ranges");
                };
                (lo, hi)
            })
            .collect();
        return match transport(&Request::Batch {
            release: release.to_string(),
            ranges,
        })? {
            Response::Values { values } => {
                if values.len() != specs.len() {
                    return Err(CliError(format!(
                        "server answered {} of {} specs",
                        values.len(),
                        specs.len()
                    )));
                }
                let mut out = String::new();
                for (spec, value) in specs.iter().zip(values) {
                    format_answer(&mut out, spec, &Answer::Value { value });
                }
                Ok(out)
            }
            Response::Error { message } => Err(CliError(message)),
            other => Err(CliError(format!("unexpected response {other:?}"))),
        };
    }
    // `DrillDown` selects its pyramid level at the top of a plan, so it
    // cannot ride inside a `Many` batch; when one appears among several
    // specs, each plan travels as its own request instead.
    if plans.len() > 1
        && plans
            .iter()
            .any(|p| matches!(p, QueryPlan::DrillDown { .. }))
    {
        let mut out = String::new();
        for (spec, plan) in specs.iter().zip(plans) {
            match transport(&Request::Plan {
                release: release.to_string(),
                plan,
            })? {
                Response::Answer { answer } => format_answer(&mut out, spec, &answer),
                Response::Error { message } => return Err(CliError(message)),
                other => return Err(CliError(format!("unexpected response {other:?}"))),
            }
        }
        return Ok(out);
    }
    let plan = if plans.len() == 1 {
        plans.remove(0)
    } else {
        QueryPlan::Many { plans }
    };
    match transport(&Request::Plan {
        release: release.to_string(),
        plan,
    })? {
        Response::Answer { answer } => {
            let answers = match answer {
                Answer::Many { answers } if specs.len() > 1 => answers,
                single => vec![single],
            };
            if answers.len() != specs.len() {
                return Err(CliError(format!(
                    "server answered {} of {} specs",
                    answers.len(),
                    specs.len()
                )));
            }
            let mut out = String::new();
            for (spec, answer) in specs.iter().zip(&answers) {
                format_answer(&mut out, spec, answer);
            }
            Ok(out)
        }
        Response::Error { message } => Err(CliError(message)),
        other => Err(CliError(format!("unexpected response {other:?}"))),
    }
}

/// Renders one answer in the CLI's `spec => …` shape. Plain values keep
/// the historical single-line form; marginals and top-k rankings take
/// one header line plus indented detail.
fn format_answer(out: &mut String, spec: &str, answer: &Answer) {
    match answer {
        Answer::Value { value } => out.push_str(&format!("{spec} => {value:.2}\n")),
        Answer::Marginal { dims, values } => {
            // `dims` are the kept axes' *sizes*; spell that out so they
            // are not misread as dimension indices.
            let shape: Vec<String> = dims.iter().map(usize::to_string).collect();
            let cells: Vec<String> = values.iter().map(|v| format!("{v:.2}")).collect();
            out.push_str(&format!(
                "{spec} => {} marginal table: [{}]\n",
                shape.join("x"),
                cells.join(", ")
            ));
        }
        Answer::TopK { dims, cells } => {
            out.push_str(&format!(
                "{spec} => top {} cells of domain {dims:?}\n",
                cells.len()
            ));
            for cell in cells {
                out.push_str(&format!("  {:?} => {:.2}\n", cell.coords, cell.value));
            }
        }
        Answer::Many { answers } => {
            // Not produced for CLI specs (each spec is one leaf plan),
            // but render nested answers rather than dropping them.
            for answer in answers {
                format_answer(out, spec, answer);
            }
        }
        Answer::Epochs { epochs, answers } => {
            // Per-epoch window answers: one header, then each epoch's
            // answer under an `epoch T` sub-spec.
            out.push_str(&format!("{spec} => {} epochs\n", epochs.len()));
            for (epoch, answer) in epochs.iter().zip(answers) {
                format_answer(out, &format!("  epoch {epoch}"), answer);
            }
        }
    }
}

/// One NDJSON request/response round trip on a fresh connection.
fn ndjson_round_trip(addr: &str, req: &Request) -> Result<Response, CliError> {
    use std::io::{BufRead, BufReader, Write};
    let stream = std::net::TcpStream::connect(addr)
        .map_err(|e| CliError(format!("cannot connect to {addr}: {e}")))?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| CliError(format!("socket: {e}")))?,
    );
    let mut line = serde_json::to_string(req).map_err(|e| CliError(e.to_string()))?;
    line.push('\n');
    let mut stream = stream;
    stream
        .write_all(line.as_bytes())
        .map_err(|e| CliError(format!("send: {e}")))?;
    let mut answer = String::new();
    reader
        .read_line(&mut answer)
        .map_err(|e| CliError(format!("receive: {e}")))?;
    serde_json::from_str(answer.trim()).map_err(|e| CliError(format!("bad response: {e}")))
}

/// Loads and validates a release JSON file.
///
/// # Errors
/// [`CliError`] for IO, JSON, or artifact-validation failures.
pub fn load_release(path: &Path) -> Result<PublishedRelease, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read {}: {e}", path.display())))?;
    serde_json::from_str(&text).map_err(|e| CliError(format!("bad release JSON: {e}")))
}

/// `dpod inspect`: human-readable release summary.
///
/// # Errors
/// [`CliError`] when the artifact fails validation.
pub fn inspect(release: PublishedRelease) -> Result<String, CliError> {
    let mut out = String::new();
    out.push_str(&format!("mechanism : {}\n", release.mechanism));
    out.push_str(&format!("epsilon   : {}\n", release.epsilon));
    out.push_str(&format!("domain    : {:?}\n", release.domain));
    match &release.body {
        ReleaseBody::PerEntry { values } => {
            out.push_str(&format!("release   : per-entry, {} values\n", values.len()));
        }
        ReleaseBody::Partitions { counts, .. } => {
            out.push_str(&format!("release   : {} partitions\n", counts.len()));
        }
    }
    let sanitized = release
        .into_sanitized()
        .map_err(|e| CliError(format!("invalid release: {e}")))?;
    out.push_str(&format!("total (estimated): {:.1}\n", sanitized.total()));
    Ok(out)
}

/// `dpod query`: answers query specs — classic ranges or the typed
/// algebra (`total`, `top:K`, `marginal:…`, `od:…`) — against a local
/// release file, through the same [`plan::execute`] path the server
/// uses (so local and remote answers are bit-identical).
///
/// # Errors
/// [`CliError`] for invalid artifacts or specs.
pub fn query(release: PublishedRelease, specs: &[String]) -> Result<String, CliError> {
    let shape =
        Shape::new(release.domain.clone()).map_err(|e| CliError(format!("bad domain: {e}")))?;
    let sanitized = release
        .into_sanitized()
        .map_err(|e| CliError(format!("invalid release: {e}")))?;
    let mut out = String::new();
    for spec in specs {
        let plan = rangespec::parse_plan(spec, &shape)?;
        let answer = plan::execute(&sanitized, &plan).map_err(|e| CliError(e.0))?;
        format_answer(&mut out, spec, &answer);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_produces_parseable_csv() {
        let args = GenerateArgs {
            city: "denver".into(),
            trips: 200,
            stops: 1,
            seed: 1,
        };
        let text = generate(&args).unwrap();
        let trips = csv::from_csv(&text).unwrap();
        assert_eq!(trips.len(), 200);
        assert_eq!(trips[0].points.len(), 3);
    }

    #[test]
    fn generate_rejects_unknown_city() {
        let args = GenerateArgs {
            city: "gotham".into(),
            trips: 1,
            stops: 0,
            seed: 1,
        };
        assert!(generate(&args).is_err());
    }

    #[test]
    fn full_curator_analyst_round_trip() {
        // generate → sanitize → inspect → query, all in memory.
        let csv_text = generate(&GenerateArgs {
            city: "newyork".into(),
            trips: 2_000,
            stops: 0,
            seed: 7,
        })
        .unwrap();
        let release_json = sanitize(
            &csv_text,
            &SanitizeArgs {
                cells: 8,
                epsilon: 1.0,
                mechanism: "daf-entropy".into(),
                seed: 9,
            },
        )
        .unwrap();
        let release: PublishedRelease = serde_json::from_str(&release_json).unwrap();
        assert_eq!(release.domain, vec![8, 8, 8, 8]);

        let summary = inspect(release.clone()).unwrap();
        assert!(summary.contains("DAF-Entropy"), "{summary}");

        let answers = query(
            release,
            &["*,*,*,*".to_string(), "0..4,0..4,*,*".to_string()],
        )
        .unwrap();
        // The full-domain estimate should be near 2000 trips.
        let total: f64 = answers
            .lines()
            .next()
            .unwrap()
            .split("=> ")
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        assert!((total - 2_000.0).abs() < 400.0, "total {total}");
    }

    #[test]
    fn sanitize_rejects_empty_and_bad_epsilon() {
        let args = SanitizeArgs {
            cells: 4,
            epsilon: 1.0,
            mechanism: "ebp".into(),
            seed: 0,
        };
        assert!(sanitize("", &args).is_err());
        let bad_eps = SanitizeArgs {
            epsilon: -1.0,
            ..SanitizeArgs {
                cells: 4,
                epsilon: 0.0,
                mechanism: "ebp".into(),
                seed: 0,
            }
        };
        assert!(sanitize("0.1,0.1,0.2,0.2\n", &bad_eps).is_err());
    }

    #[test]
    fn publish_then_serve_answers_over_tcp() {
        use dpod_serve::protocol::{Request, Response};
        use std::io::{BufRead, BufReader, BufWriter, Write};

        let dir = std::env::temp_dir().join(format!("dpod_cli_serve_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        // Curator: publish two releases into the catalog directory.
        let csv_text = generate(&GenerateArgs {
            city: "denver".into(),
            trips: 3_000,
            stops: 0,
            seed: 21,
        })
        .unwrap();
        let args = SanitizeArgs {
            cells: 8,
            epsilon: 1.0,
            mechanism: "ebp".into(),
            seed: 22,
        };
        let msg = publish(&csv_text, &args, "denver-ebp", &dir, None, None, None).unwrap();
        assert!(msg.contains("v1"), "{msg}");
        let msg = publish(&csv_text, &args, "denver-ebp", &dir, None, None, None).unwrap();
        assert!(msg.contains("v2"), "{msg}");
        publish(
            &csv_text,
            &SanitizeArgs {
                mechanism: "identity".into(),
                ..SanitizeArgs {
                    cells: 8,
                    epsilon: 1.0,
                    mechanism: String::new(),
                    seed: 23,
                }
            },
            "denver-id",
            &dir,
            None,
            None,
            None,
        )
        .unwrap();

        // Analyst: serve the catalog and query it over TCP.
        let (handle, server, _exporter) = start_server(&ServeArgs {
            catalog: dir.clone(),
            addr: "127.0.0.1:0".into(),
            workers: 2,
            cache_mb: 64,
            index_mb: 64,
            wire: WireMode::Auto,
            front_end: None,
            event_loops: 0,
            listen_backlog: 1024,
            metrics_addr: None,
            retain_ttl: None,
            retain_last: 1,
        })
        .unwrap();
        assert_eq!(server.catalog().len(), 2);

        let stream = std::net::TcpStream::connect(handle.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        let req = Request::Batch {
            release: "denver-ebp".into(),
            ranges: vec![(vec![0, 0, 0, 0], vec![8, 8, 8, 8])],
        };
        writer
            .write_all(serde_json::to_string(&req).unwrap().as_bytes())
            .unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp: Response = serde_json::from_str(line.trim()).unwrap();
        let Response::Values { values } = resp else {
            panic!("expected values, got {resp:?}");
        };
        // Full-domain estimate near the 3000 generated trips.
        assert!((values[0] - 3_000.0).abs() < 600.0, "total {}", values[0]);

        // `dpod query --connect`: identical output over both encodings,
        // and both agree with the raw batch answer above.
        let addr = handle.addr().to_string();
        let spec = vec!["*,*,*,*".to_string()];
        let json_out = remote_query(&addr, "denver-ebp", &spec, false).unwrap();
        let bin_out = remote_query(&addr, "denver-ebp", &spec, true).unwrap();
        assert_eq!(json_out, bin_out);
        assert_eq!(json_out, format!("*,*,*,* => {:.2}\n", values[0]));
        assert!(remote_query(&addr, "no-such-release", &spec, true).is_err());

        handle.stop();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `--series-budget` refuses any publish whose post-retention live
    /// epochs would exceed the ceiling — and refunds from the `--retain`
    /// prune count, so a sliding window publishes forever under a fixed
    /// ceiling.
    #[test]
    fn series_budget_refuses_over_ceiling_publishes() {
        let dir = std::env::temp_dir().join(format!("dpod_cli_budget_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let csv_text = generate(&GenerateArgs {
            city: "denver".into(),
            trips: 1_000,
            stops: 0,
            seed: 7,
        })
        .unwrap();
        let args = SanitizeArgs {
            cells: 8,
            epsilon: 1.0,
            mechanism: "ebp".into(),
            seed: 8,
        };

        // Ceiling of 2.0 at ε=1.0/epoch: two live epochs fit exactly.
        let b = Some(2.0);
        publish(&csv_text, &args, "denver", &dir, Some(1), Some(2), b).unwrap();
        publish(&csv_text, &args, "denver", &dir, Some(2), Some(2), b).unwrap();
        // A third without retention pruning would hold 3ε — refused,
        // and nothing is written (epoch 3 stays unpublished).
        let err = publish(&csv_text, &args, "denver", &dir, Some(3), None, b).unwrap_err();
        assert!(err.0.contains("series-budget"), "{err}");
        // With the window of 2 the oldest epoch's refund pays for the
        // new one: active ε stays at 2.0 and the publish is accepted.
        let msg = publish(&csv_text, &args, "denver", &dir, Some(3), Some(2), b).unwrap();
        assert!(msg.contains("retired epoch 1"), "{msg}");
        // The ceiling needs an epoch series to meter.
        assert!(publish(&csv_text, &args, "denver", &dir, None, None, b).is_err());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn epoch_publish_retention_and_window_queries() {
        use dpod_query::{EpochSelector, WindowMerge};

        let dir = std::env::temp_dir().join(format!("dpod_cli_epoch_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let csv_text = generate(&GenerateArgs {
            city: "denver".into(),
            trips: 2_000,
            stops: 0,
            seed: 41,
        })
        .unwrap();
        let args = SanitizeArgs {
            cells: 8,
            epsilon: 1.0,
            mechanism: "ebp".into(),
            seed: 42,
        };

        // Three continual publications under a sliding window of 2.
        let msg = publish(&csv_text, &args, "denver", &dir, Some(1), Some(2), None).unwrap();
        assert!(msg.contains("'denver' epoch 1 v1"), "{msg}");
        let msg = publish(&csv_text, &args, "denver", &dir, Some(2), Some(2), None).unwrap();
        assert!(!msg.contains("retired"), "{msg}");
        let msg = publish(&csv_text, &args, "denver", &dir, Some(3), Some(2), None).unwrap();
        assert!(msg.contains("retired epoch 1"), "{msg}");

        // Retired epochs stay retired across reloads; --retain needs
        // --epoch; series names cannot contain the separator.
        let err = publish(&csv_text, &args, "denver", &dir, Some(1), None, None).unwrap_err();
        assert!(err.0.contains("behind the frontier"), "{err}");
        assert!(publish(&csv_text, &args, "denver", &dir, None, Some(2), None).is_err());
        assert!(publish(&csv_text, &args, "d@nver", &dir, Some(4), None, None).is_err());

        // Serve the directory: the two live epochs answer window plans.
        let (handle, server, _exporter) = start_server(&ServeArgs {
            catalog: dir.clone(),
            addr: "127.0.0.1:0".into(),
            workers: 2,
            cache_mb: 64,
            index_mb: 64,
            wire: WireMode::Auto,
            front_end: None,
            event_loops: 0,
            listen_backlog: 1024,
            metrics_addr: None,
            retain_ttl: None,
            retain_last: 1,
        })
        .unwrap();
        assert_eq!(server.catalog().len(), 2);
        assert_eq!(series::series_names(server.catalog()).len(), 1);

        let mut client = dpod_serve::wire::Client::connect(handle.addr()).unwrap();
        client
            .send(&Request::Plan {
                release: "denver".into(),
                plan: QueryPlan::Window {
                    select: EpochSelector::LastK { k: 2 },
                    merge: WindowMerge::PerEpoch,
                    plan: Box::new(QueryPlan::Total),
                },
            })
            .unwrap();
        let Response::Answer {
            answer: Answer::Epochs { epochs, answers },
        } = client.receive().unwrap()
        else {
            panic!("expected per-epoch answer");
        };
        assert_eq!(epochs, vec![2, 3]);
        assert_eq!(answers.len(), 2);
        let mut rendered = String::new();
        format_answer(&mut rendered, "window", &Answer::Epochs { epochs, answers });
        assert!(rendered.contains("window => 2 epochs"), "{rendered}");
        assert!(rendered.contains("  epoch 2 => "), "{rendered}");

        handle.stop();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_refuses_empty_catalog() {
        let dir = std::env::temp_dir().join(format!("dpod_cli_empty_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        assert!(start_server(&ServeArgs {
            catalog: dir.clone(),
            addr: "127.0.0.1:0".into(),
            workers: 1,
            cache_mb: 1,
            index_mb: 1,
            wire: WireMode::Auto,
            front_end: None,
            event_loops: 0,
            listen_backlog: 1024,
            metrics_addr: None,
            retain_ttl: None,
            retain_last: 1,
        })
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn plan_specs_answer_locally_and_remotely() {
        // Publish a 1-stop (6-D) release so OD stop legs are exercised.
        let dir = std::env::temp_dir().join(format!("dpod_cli_plan_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let csv_text = generate(&GenerateArgs {
            city: "newyork".into(),
            trips: 2_000,
            stops: 1,
            seed: 31,
        })
        .unwrap();
        let args = SanitizeArgs {
            cells: 4,
            epsilon: 1.0,
            mechanism: "ebp".into(),
            seed: 32,
        };
        publish(&csv_text, &args, "ny", &dir, None, None, None).unwrap();

        let specs = vec![
            "total".to_string(),
            "top:3".to_string(),
            "marginal:0,1".to_string(),
            "od:o=0..2x0..2;s0=1..3x1..3;d=2..4x2..4".to_string(),
            "*,*,*,*,*,*".to_string(),
            // Drill-downs cannot ride inside `Many`, so their presence
            // forces the remote path onto one request per spec — this
            // mixed list pins that route too.
            "drill:1:total".to_string(),
            "level:1:marginal:0,1".to_string(),
        ];
        // Local path: the release artifact answers directly.
        let release = sanitize_to_release(&csv_text, &args).unwrap();
        let local = query(release, &specs).unwrap();
        assert!(local.contains("total => "), "{local}");
        assert!(local.contains("top:3 => top 3 cells"), "{local}");
        assert!(
            local.contains("marginal:0,1 => 4x4 marginal table"),
            "{local}"
        );

        // Remote path: identical output over both encodings, which also
        // pins JSON/DPRB agreement through the full CLI stack.
        let (handle, _server, _exporter) = start_server(&ServeArgs {
            catalog: dir.clone(),
            addr: "127.0.0.1:0".into(),
            workers: 2,
            cache_mb: 64,
            index_mb: 64,
            wire: WireMode::Auto,
            front_end: None,
            event_loops: 0,
            listen_backlog: 1024,
            metrics_addr: None,
            retain_ttl: None,
            retain_last: 1,
        })
        .unwrap();
        let addr = handle.addr().to_string();
        let json_out = remote_query(&addr, "ny", &specs, false).unwrap();
        let bin_out = remote_query(&addr, "ny", &specs, true).unwrap();
        assert_eq!(json_out, bin_out);
        assert_eq!(json_out, local, "serving must not change the answers");

        // A bad plan (stop index past the release's one stop) is a
        // server-side error carried back verbatim.
        let bad = vec!["od:s5=0..1x0..1".to_string()];
        let err = remote_query(&addr, "ny", &bad, true).unwrap_err();
        assert!(err.0.contains("stop index"), "{err}");
        handle.stop();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_is_bit_identical_warm_cold_and_remote() {
        let dir = std::env::temp_dir().join(format!("dpod_cli_replay_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();

        // One deterministic release, both as a local artifact and
        // published into a served catalog (same CSV + args + seed →
        // identical releases).
        let csv_text = generate(&GenerateArgs {
            city: "detroit".into(),
            trips: 2_500,
            stops: 0,
            seed: 51,
        })
        .unwrap();
        let args = SanitizeArgs {
            cells: 8,
            epsilon: 1.0,
            mechanism: "ebp".into(),
            seed: 52,
        };
        let release_path = dir.join("release.json");
        std::fs::write(&release_path, sanitize(&csv_text, &args).unwrap()).unwrap();
        let catalog_dir = dir.join("catalog");
        publish(&csv_text, &args, "detroit", &catalog_dir, None, None, None).unwrap();

        // A recorded stream: every plan variant plus one failing plan.
        let plans_path = dir.join("plans.ndjson");
        std::fs::write(
            &plans_path,
            concat!(
                "\"Total\"\n",
                "{\"TopK\":{\"k\":5}}\n",
                "{\"Marginal\":{\"keep\":[0,1]}}\n",
                "\n",
                "{\"Range\":{\"lo\":[0,0,1,1],\"hi\":[8,8,7,7]}}\n",
                "{\"Marginal\":{\"keep\":[9]}}\n",
                "{\"TopK\":{\"k\":5}}\n",
            ),
        )
        .unwrap();

        let run = |connect: Option<String>, binary: bool, cold: bool, tag: &str| {
            let answers = dir.join(format!("answers_{tag}.ndjson"));
            let release = match &connect {
                Some(_) => "detroit".to_string(),
                None => release_path.display().to_string(),
            };
            let summary = replay(&ReplayArgs {
                file: plans_path.clone(),
                release,
                connect,
                binary,
                cold,
                answers: Some(answers.clone()),
                connections: 1,
                slo_report: None,
            })
            .unwrap();
            assert!(
                summary.contains("replayed 6 plans") && summary.contains("1 errors"),
                "{summary}"
            );
            assert!(summary.contains("p99"), "{summary}");
            std::fs::read_to_string(answers).unwrap()
        };

        let cold1 = run(None, false, true, "cold1");
        let cold2 = run(None, false, true, "cold2");
        let warm = run(None, false, false, "warm");
        assert_eq!(cold1, cold2, "cold replays must be deterministic");
        assert_eq!(
            cold1, warm,
            "indexed replay must be bit-identical to the cold scan"
        );
        assert_eq!(warm.lines().count(), 6);
        // The repeated TopK plan answers identically warm (lines 2 and
        // 7 of the stream → answers 2 and 6).
        let lines: Vec<&str> = warm.lines().collect();
        assert_eq!(lines[1], lines[5]);

        // Remote replays (both encodings) serve the same bytes.
        let (handle, _server, _exporter) = start_server(&ServeArgs {
            catalog: catalog_dir,
            addr: "127.0.0.1:0".into(),
            workers: 2,
            cache_mb: 64,
            index_mb: 64,
            wire: WireMode::Auto,
            front_end: None,
            event_loops: 0,
            listen_backlog: 1024,
            metrics_addr: None,
            retain_ttl: None,
            retain_last: 1,
        })
        .unwrap();
        let addr = handle.addr().to_string();
        let remote_json = run(Some(addr.clone()), false, false, "remote_json");
        let remote_bin = run(Some(addr.clone()), true, false, "remote_bin");
        assert_eq!(cold1, remote_json, "NDJSON replay drifted");
        assert_eq!(cold1, remote_bin, "DPRB replay drifted");

        // --cold makes no sense against a remote server (it would
        // silently measure the indexed path); it is refused up front.
        let err = replay(&ReplayArgs {
            file: plans_path.clone(),
            release: "detroit".into(),
            connect: Some(addr),
            binary: false,
            cold: true,
            answers: None,
            connections: 1,
            slo_report: None,
        })
        .unwrap_err();
        assert!(err.0.contains("local replays only"), "{err}");

        // The periodic serve stats line reflects the replay traffic.
        let line = stats_line(&_server);
        assert!(line.contains("served"), "{line}");
        assert!(line.contains("% hit"), "{line}");
        assert!(line.contains("built"), "{line}");
        assert!(line.contains("pyramid"), "{line}");
        handle.stop();

        // Malformed streams are named by line.
        let bad = dir.join("bad.ndjson");
        std::fs::write(&bad, "\"Total\"\nnot json\n").unwrap();
        let err = replay(&ReplayArgs {
            file: bad,
            release: release_path.display().to_string(),
            connect: None,
            binary: false,
            cold: false,
            answers: None,
            connections: 1,
            slo_report: None,
        })
        .unwrap_err();
        assert!(err.0.contains("line 2"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_fans_out_over_concurrent_connections() {
        let dir = std::env::temp_dir().join(format!("dpod_cli_fanout_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let csv_text = generate(&GenerateArgs {
            city: "denver".into(),
            trips: 2_000,
            stops: 0,
            seed: 61,
        })
        .unwrap();
        let args = SanitizeArgs {
            cells: 8,
            epsilon: 1.0,
            mechanism: "ebp".into(),
            seed: 62,
        };
        let catalog_dir = dir.join("catalog");
        publish(&csv_text, &args, "denver", &catalog_dir, None, None, None).unwrap();

        // 40 plans over 4 connections: every connection gets work and
        // the aggregate line reports the fan-out.
        let plans_path = dir.join("plans.ndjson");
        let mut stream = String::new();
        for i in 0..40 {
            stream.push_str(if i % 2 == 0 {
                "\"Total\"\n"
            } else {
                "{\"TopK\":{\"k\":3}}\n"
            });
        }
        std::fs::write(&plans_path, stream).unwrap();

        let (handle, server, _exporter) = start_server(&ServeArgs {
            catalog: catalog_dir,
            addr: "127.0.0.1:0".into(),
            workers: 2,
            cache_mb: 64,
            index_mb: 64,
            wire: WireMode::Auto,
            front_end: Some(FrontEnd::Event),
            event_loops: 0,
            listen_backlog: 1024,
            metrics_addr: None,
            retain_ttl: None,
            retain_last: 1,
        })
        .unwrap();
        let addr = handle.addr().to_string();
        for binary in [false, true] {
            let summary = replay(&ReplayArgs {
                file: plans_path.clone(),
                release: "denver".into(),
                connect: Some(addr.clone()),
                binary,
                cold: false,
                answers: None,
                connections: 4,
                slo_report: None,
            })
            .unwrap();
            assert!(
                summary.contains("replayed 40 plans over 4 connections"),
                "{summary}"
            );
            assert!(summary.contains("plans/s aggregate"), "{summary}");
            assert!(summary.contains("per-connection p99"), "{summary}");
            assert!(summary.contains("0 errors"), "{summary}");
        }
        // All four sockets were really concurrent on the server.
        assert!(server.accepted_connections() >= 8);

        // Misconfigurations are refused up front.
        let base = ReplayArgs {
            file: plans_path.clone(),
            release: "denver".into(),
            connect: Some(addr.clone()),
            binary: false,
            cold: false,
            answers: None,
            connections: 0,
            slo_report: None,
        };
        assert!(replay(&base).unwrap_err().0.contains("at least 1"));
        let err = replay(&ReplayArgs {
            connect: None,
            connections: 3,
            slo_report: None,
            release: dir.join("missing.json").display().to_string(),
            file: plans_path.clone(),
            binary: false,
            cold: false,
            answers: None,
        })
        .unwrap_err();
        assert!(err.0.contains("--connect"), "{err}");
        let err = replay(&ReplayArgs {
            connections: 3,
            slo_report: None,
            answers: Some(dir.join("a.ndjson")),
            file: plans_path.clone(),
            release: "denver".into(),
            connect: Some(addr),
            binary: false,
            cold: false,
        })
        .unwrap_err();
        assert!(err.0.contains("--connections 1"), "{err}");
        handle.stop();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Pins the fan-out summary to exact output: quantiles are bucket
    /// upper bounds, a pure function of the recorded samples, so the
    /// same samples must render the same report — regardless of the
    /// order connections are merged in.
    #[test]
    fn slo_report_quantiles_are_deterministic() {
        let build = |reversed: bool| {
            let mut a = ConnReport::new();
            for _ in 0..50 {
                a.latency.record(1_000_000);
            }
            for _ in 0..10 {
                a.latency.record(3_000_000);
            }
            a.leaves = 5;
            let mut b = ConnReport::new();
            for _ in 0..40 {
                b.latency.record(2_000_000);
            }
            b.leaves = 7;
            b.errors = 1;
            let reports = if reversed { vec![b, a] } else { vec![a, b] };
            fan_out_summary(&build_slo_report(&reports, 100, 2.0))
        };
        let summary = build(false);
        assert_eq!(
            summary,
            "replayed 100 plans over 2 connections (12 leaves, 1 errors) in \
             2.000s: 50 plans/s aggregate\n\
             latency: mean 1.600 ms, p50 1.016 ms, p99 3.015 ms; \
             per-connection p99 2.032..3.015 ms\n"
        );
        assert_eq!(summary, build(true), "merge order changed the report");
    }

    #[test]
    fn replay_writes_machine_readable_slo_report() {
        let dir = std::env::temp_dir().join(format!("dpod_cli_slo_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let csv_text = generate(&GenerateArgs {
            city: "detroit".into(),
            trips: 500,
            stops: 0,
            seed: 71,
        })
        .unwrap();
        let release_path = dir.join("release.json");
        std::fs::write(
            &release_path,
            sanitize(
                &csv_text,
                &SanitizeArgs {
                    cells: 8,
                    epsilon: 1.0,
                    mechanism: "ebp".into(),
                    seed: 72,
                },
            )
            .unwrap(),
        )
        .unwrap();
        let plans_path = dir.join("plans.ndjson");
        std::fs::write(&plans_path, "\"Total\"\n{\"TopK\":{\"k\":2}}\n\"Total\"\n").unwrap();

        let slo_path = dir.join("slo.json");
        replay(&ReplayArgs {
            file: plans_path,
            release: release_path.display().to_string(),
            connect: None,
            binary: false,
            cold: false,
            answers: None,
            connections: 1,
            slo_report: Some(slo_path.clone()),
        })
        .unwrap();

        // Round-trip through mirror structs: the artifact must parse as
        // JSON with exactly the documented fields.
        #[derive(serde::Deserialize)]
        struct LatencyDoc {
            count: u64,
            mean_ms: f64,
            p50_ms: f64,
            p90_ms: f64,
            p99_ms: f64,
            p999_ms: f64,
            max_ms: f64,
        }
        #[derive(serde::Deserialize)]
        struct ReportDoc {
            plans: usize,
            leaves: u64,
            errors: usize,
            wall_seconds: f64,
            plans_per_second: f64,
            connections: usize,
            latency: LatencyDoc,
            per_connection: Vec<LatencyDoc>,
        }
        let doc: ReportDoc =
            serde_json::from_str(&std::fs::read_to_string(&slo_path).unwrap()).unwrap();
        assert_eq!(doc.plans, 3);
        assert_eq!(doc.errors, 0);
        assert_eq!(doc.connections, 1);
        assert_eq!(doc.latency.count, 3);
        assert_eq!(doc.per_connection.len(), 1);
        assert!(doc.leaves > 0);
        assert!(doc.wall_seconds > 0.0 && doc.plans_per_second > 0.0);
        let l = &doc.latency;
        assert!(
            l.p50_ms <= l.p90_ms
                && l.p90_ms <= l.p99_ms
                && l.p99_ms <= l.p999_ms
                && l.p999_ms <= l.max_ms,
            "quantiles out of order: p50 {}, p99 {}, max {}",
            l.p50_ms,
            l.p99_ms,
            l.max_ms
        );
        assert!(l.mean_ms > 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn query_rejects_bad_specs() {
        let csv_text = "0.1,0.1,0.9,0.9\n";
        let json = sanitize(
            csv_text,
            &SanitizeArgs {
                cells: 4,
                epsilon: 1.0,
                mechanism: "uniform".into(),
                seed: 3,
            },
        )
        .unwrap();
        let release: PublishedRelease = serde_json::from_str(&json).unwrap();
        assert!(query(release.clone(), &["*,*".to_string()]).is_err());
        assert!(query(release, &["0..9,*,*,*".to_string()]).is_err());
    }
}
