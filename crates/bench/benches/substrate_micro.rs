//! Micro-benchmarks of the substrates every mechanism is built on:
//! Laplace sampling, prefix-sum construction and box queries, entropy, and
//! grid materialization. Regressions here multiply into every experiment.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dpod_dp::laplace::sample_laplace;
use dpod_fmatrix::{entropy::matrix_entropy, AxisBox, DenseMatrix, PrefixSum, Shape};
use dpod_partition::UniformGrid;

fn bench_laplace(c: &mut Criterion) {
    let mut group = c.benchmark_group("laplace_sampling");
    group.throughput(Throughput::Elements(1));
    group.bench_function("sample", |b| {
        let mut rng = dpod_dp::seeded_rng(1);
        b.iter(|| black_box(sample_laplace(&mut rng, 10.0)));
    });
    group.finish();
}

fn bench_prefix(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefix_sum");
    group.sample_size(20);
    for side in [256usize, 512] {
        let shape = Shape::new(vec![side, side]).unwrap();
        let data: Vec<u64> = (0..shape.size() as u64).map(|i| i % 17).collect();
        let m = DenseMatrix::from_vec(shape, data).unwrap();
        group.throughput(Throughput::Elements((side * side) as u64));
        group.bench_function(format!("build_2d_{side}"), |b| {
            b.iter(|| black_box(PrefixSum::from_counts(&m)));
        });
        let p = PrefixSum::from_counts(&m);
        let q = AxisBox::new(vec![side / 8, side / 8], vec![side / 2, side / 2]).unwrap();
        group.throughput(Throughput::Elements(1));
        group.bench_function(format!("box_sum_2d_{side}"), |b| {
            b.iter(|| black_box(p.box_count(&q)));
        });
    }
    // A 6-D table exercises the 2^d corner enumeration.
    let shape6 = Shape::cube(6, 8).unwrap();
    let data: Vec<u64> = (0..shape6.size() as u64).map(|i| i % 5).collect();
    let m6 = DenseMatrix::from_vec(shape6, data).unwrap();
    let p6 = PrefixSum::from_counts(&m6);
    let q6 = AxisBox::new(vec![1; 6], vec![7; 6]).unwrap();
    group.bench_function("box_sum_6d", |b| b.iter(|| black_box(p6.box_count(&q6))));
    group.finish();
}

fn bench_entropy_and_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("entropy_and_grid");
    group.sample_size(20);
    let shape = Shape::new(vec![512, 512]).unwrap();
    let data: Vec<u64> = (0..shape.size() as u64).map(|i| (i * i) % 97).collect();
    let m = DenseMatrix::from_vec(shape.clone(), data).unwrap();
    group.bench_function("matrix_entropy_512", |b| {
        b.iter(|| black_box(matrix_entropy(&m)));
    });
    group.bench_function("grid_partitioning_64x64", |b| {
        b.iter(|| {
            let g = UniformGrid::isotropic(&shape, 64);
            black_box(g.to_partitioning().len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_laplace, bench_prefix, bench_entropy_and_grid);
criterion_main!(benches);
