//! Serving-layer throughput: queries/sec against a warm release catalog.
//!
//! The paper's deployment model is publish-once, query-forever; the
//! serving subsystem's job is to make the query side cheap at volume.
//! This bench pins three paths over a catalog of three 256×256 releases:
//!
//! * `handle/single` — one in-process `Server::handle` round trip per
//!   range query (the CLI/bench path);
//! * `handle/batch` — 1000-range batches through one request (amortized
//!   name resolution and cache lookup);
//! * `tcp/pipelined` — end-to-end newline-delimited JSON over a local
//!   socket;
//! * `tcp/binary` — the same single-query traffic over the `DPRB`
//!   binary protocol (pipelined frames, one connection);
//! * `tcp/binary-batch` — 1000-range `DPRB` batch frames, the protocol's
//!   intended interactive-analyst shape — measured legacy and packed
//!   (the preamble feature bit that varint-packs coordinates and answer
//!   vectors), plus static `wire_bytes_batch1000_*` rows pinning the
//!   bytes per batch round trip under each encoding;
//! * `plan/marginal` and `plan/topk` — the typed query algebra's hot
//!   aggregate plans (`QueryPlan::Marginal` / `QueryPlan::TopK`) over
//!   both TCP encodings, measuring plans/sec (each plan scans the full
//!   release, so these are orders of magnitude below range-sum rates by
//!   design);
//! * `plan/*_pyramid` — coarse aggregates over a 1024×1024 release
//!   routed through the resolution pyramid (`DrillDown { level: 4 }`
//!   answers from a memoized 64×64 coarse level, derived from the
//!   sanitized leaf by pure post-processing — zero extra ε), pinned
//!   against the leaf-indexed marginal at the same side; the pyramid
//!   marginal must clear 5× the leaf-indexed rate;
//! * `tcp/eventloop-cN` — request/response `DPRB` traffic from N
//!   concurrent connections (1, 64, 512) against the epoll front end
//!   (one loop shard, pinned) on a fixed 8-worker pool, plus a
//!   `tcp/pool-c64` row from the legacy thread-per-connection front end
//!   at the same worker count — the many-analysts shape the event loop
//!   exists for;
//! * `replay_plans_c1024_eventloop_shards4` — the replay load generator
//!   at 1024 connections over **four** `SO_REUSEPORT` loop shards, the
//!   fan-in where a single loop thread became the ceiling.
//! * `window_lastk3_publish_storm` — sliding-window plans
//!   (`Window{LastK:3}` over an epoch series) answered while a curator
//!   thread republishes the frontier epoch as fast as it can: the
//!   continual-publication shape, where each republish invalidates only
//!   that epoch's memoized partial and the warm epochs keep answering
//!   from cache.
//!
//! Besides the criterion-style console lines, it writes the measured
//! queries/sec into `BENCH_serve.json` (report::Experiment schema) so the
//! workspace's perf trajectory accumulates across PRs. Setting
//! `DPOD_BENCH_SMOKE=1` shrinks every workload to a seconds-long smoke
//! run (CI uses this to catch codec regressions without paying for a
//! full measurement; the trajectory file is not rewritten in that mode).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dpod_bench::report::{Experiment, Panel};
use dpod_bench::{datasets, HarnessConfig, Scale};
use dpod_core::{baselines::Identity, grid::Ebp, grid::Eug, Mechanism, PublishedRelease};
use dpod_dp::Epsilon;
use dpod_query::workload::QueryWorkload;
use dpod_query::QueryPlan;
use dpod_serve::protocol::{Request, Response};
use dpod_serve::{Catalog, FrontEnd, Server, SpawnOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::sync::Arc;
use std::time::Instant;

const SIDE: usize = 256;
const BATCH: usize = 1_000;

/// `DPOD_BENCH_SMOKE=1` → correctness-smoke sizes, no trajectory write.
fn smoke() -> bool {
    std::env::var("DPOD_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Catalog of three 256×256 releases from distinct mechanisms.
fn build_server() -> Arc<Server> {
    let cfg = HarnessConfig::at_scale(Scale::Quick);
    let ds = datasets::gaussian(&cfg, 2, 0.1);
    let eps = Epsilon::new(0.5).expect("valid epsilon");
    let catalog = Catalog::new();
    let mechanisms: [(&str, Box<dyn Mechanism>); 3] = [
        ("gauss-ebp", Box::new(Ebp::default())),
        ("gauss-eug", Box::new(Eug::default())),
        ("gauss-identity", Box::new(Identity)),
    ];
    for (i, (name, mech)) in mechanisms.into_iter().enumerate() {
        let out = mech
            .sanitize(&ds.matrix, eps, &mut dpod_dp::seeded_rng(100 + i as u64))
            .expect("sanitize");
        catalog.publish(name, PublishedRelease::from_sanitized(&out));
    }
    Arc::new(Server::new(Arc::new(catalog), 256 << 20))
}

fn query_requests(n: usize) -> Vec<Request> {
    let shape = dpod_fmatrix::Shape::new(vec![SIDE, SIDE]).expect("shape");
    let mut rng = dpod_dp::seeded_rng(7);
    let names = ["gauss-ebp", "gauss-eug", "gauss-identity"];
    QueryWorkload::Random
        .draw_many(&shape, n, &mut rng)
        .into_iter()
        .enumerate()
        .map(|(i, q)| Request::Query {
            release: names[i % names.len()].to_string(),
            lo: q.lo().to_vec(),
            hi: q.hi().to_vec(),
        })
        .collect()
}

/// Directly measured queries/sec for the trajectory file.
fn measure_qps(server: &Server, requests: &[Request], rounds: usize) -> f64 {
    let start = Instant::now();
    let mut answered = 0u64;
    for _ in 0..rounds {
        for req in requests {
            match server.handle(req) {
                Response::Value { value } => {
                    black_box(value);
                    answered += 1;
                }
                other => panic!("query failed: {other:?}"),
            }
        }
    }
    answered as f64 / start.elapsed().as_secs_f64()
}

fn measure_batch_qps(server: &Server, rounds: usize) -> f64 {
    let shape = dpod_fmatrix::Shape::new(vec![SIDE, SIDE]).expect("shape");
    let mut rng = dpod_dp::seeded_rng(8);
    let ranges: Vec<(Vec<usize>, Vec<usize>)> = QueryWorkload::Random
        .draw_many(&shape, BATCH, &mut rng)
        .into_iter()
        .map(|q| (q.lo().to_vec(), q.hi().to_vec()))
        .collect();
    let req = Request::Batch {
        release: "gauss-ebp".into(),
        ranges,
    };
    let start = Instant::now();
    for _ in 0..rounds {
        match server.handle(&req) {
            Response::Values { values } => {
                black_box(values.len());
            }
            other => panic!("batch failed: {other:?}"),
        }
    }
    (BATCH * rounds) as f64 / start.elapsed().as_secs_f64()
}

/// The serving handle the *legacy* trajectory rows were recorded on:
/// the thread-pool front end at 4 workers. Pinned explicitly now that
/// [`dpod_serve::spawn`] defaults to the event loop, so the historical
/// labels in `BENCH_serve.json` keep comparing like with like (the
/// event core has its own `*_eventloop` / `replay_plans_*` rows).
fn spawn_legacy_pool(server: Arc<Server>) -> dpod_serve::ServerHandle {
    dpod_serve::spawn_with(
        server,
        "127.0.0.1:0",
        SpawnOptions {
            workers: 4,
            front_end: Some(FrontEnd::Pool),
            ..SpawnOptions::default()
        },
    )
    .expect("bind")
}

fn measure_tcp_qps(server: Arc<Server>, n: usize) -> f64 {
    let handle = spawn_legacy_pool(server);
    let requests = query_requests(n);
    let stream = std::net::TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = BufWriter::new(stream);
    let start = Instant::now();
    // Pipeline everything, then read all responses back.
    for req in &requests {
        writer
            .write_all(serde_json::to_string(req).expect("encode").as_bytes())
            .expect("write");
        writer.write_all(b"\n").expect("write");
    }
    writer.flush().expect("flush");
    let mut line = String::new();
    for _ in 0..requests.len() {
        line.clear();
        reader.read_line(&mut line).expect("read");
        let resp: Response = serde_json::from_str(line.trim()).expect("decode");
        match resp {
            Response::Value { value } => {
                black_box(value);
            }
            other => panic!("tcp query failed: {other:?}"),
        }
    }
    let qps = requests.len() as f64 / start.elapsed().as_secs_f64();
    drop(writer);
    drop(reader);
    handle.stop();
    qps
}

/// Single-query `DPRB` frames, pipelined on one connection.
fn measure_tcp_binary_qps(server: Arc<Server>, n: usize) -> f64 {
    let handle = spawn_legacy_pool(server);
    let requests = query_requests(n);
    let mut client = dpod_serve::wire::Client::connect(handle.addr()).expect("connect");
    let start = Instant::now();
    for req in &requests {
        client.send(req).expect("send");
    }
    for _ in 0..requests.len() {
        match client.receive().expect("receive") {
            Response::Value { value } => {
                black_box(value);
            }
            other => panic!("binary query failed: {other:?}"),
        }
    }
    let qps = requests.len() as f64 / start.elapsed().as_secs_f64();
    handle.stop();
    qps
}

/// The fixed 1000-range batch request the binary-batch rows share.
fn batch_request() -> Request {
    let shape = dpod_fmatrix::Shape::new(vec![SIDE, SIDE]).expect("shape");
    let mut rng = dpod_dp::seeded_rng(9);
    let ranges: Vec<(Vec<usize>, Vec<usize>)> = QueryWorkload::Random
        .draw_many(&shape, BATCH, &mut rng)
        .into_iter()
        .map(|q| (q.lo().to_vec(), q.hi().to_vec()))
        .collect();
    Request::Batch {
        release: "gauss-ebp".into(),
        ranges,
    }
}

/// 1000-range `DPRB` batch frames on one connection: the protocol's
/// intended high-volume shape. `packed` negotiates the varint-packed
/// payload encoding (preamble feature bit `0x80`).
fn measure_tcp_binary_batch_qps(server: Arc<Server>, rounds: usize, packed: bool) -> f64 {
    let handle = spawn_legacy_pool(server);
    let mut client =
        dpod_serve::wire::Client::connect_with(handle.addr(), packed).expect("connect");
    let req = batch_request();
    let start = Instant::now();
    for _ in 0..rounds {
        match client.request(&req).expect("batch") {
            Response::Values { values } => {
                black_box(values.len());
            }
            other => panic!("binary batch failed: {other:?}"),
        }
    }
    let qps = (BATCH * rounds) as f64 / start.elapsed().as_secs_f64();
    handle.stop();
    qps
}

/// Wire bytes for one 1000-range batch round trip (request frame plus
/// response frame), legacy vs varint-packed payload encoding — the
/// serialization-tax comparison the packed feature bit exists for.
fn measure_batch_wire_bytes(server: &Server) -> (usize, usize) {
    use dpod_serve::wire;
    let req = batch_request();
    let resp = server.handle(&req);
    let frame = |body: &[u8]| {
        let mut framed = Vec::new();
        wire::write_frame(&mut framed, body).expect("frame");
        framed.len()
    };
    let legacy = frame(&wire::encode_request(&req)) + frame(&wire::encode_response(&resp));
    let packed =
        frame(&wire::encode_request_packed(&req)) + frame(&wire::encode_response_packed(&resp));
    (legacy, packed)
}

/// Plans/sec for one fixed typed plan over the chosen encoding, fully
/// pipelined on one connection: a sender thread streams the `n`
/// pre-encoded requests while the main thread drains and decodes every
/// response, so neither socket buffer can fill against a blocked peer
/// however large `n` is. Aggregate plans return multi-kilobyte answers,
/// so this measures the full serialize/transport cost, not just compute.
fn measure_tcp_plan_qps(
    server: Arc<Server>,
    release: &str,
    plan: QueryPlan,
    n: usize,
    binary: bool,
) -> f64 {
    let handle = spawn_legacy_pool(server);
    let req = Request::Plan {
        release: release.to_string(),
        plan,
    };
    let check = |resp: Response| match resp {
        Response::Answer { answer } => {
            black_box(answer.units());
        }
        other => panic!("plan failed: {other:?}"),
    };
    let stream = std::net::TcpStream::connect(handle.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut request_bytes = Vec::new();
    if binary {
        request_bytes.extend_from_slice(dpod_serve::wire::WIRE_MAGIC);
        request_bytes.push(dpod_serve::wire::WIRE_VERSION);
    }
    let one_request = if binary {
        let mut frame = Vec::new();
        dpod_serve::wire::write_frame(&mut frame, &dpod_serve::wire::encode_request(&req))
            .expect("encode");
        frame
    } else {
        let mut line = serde_json::to_string(&req).expect("encode").into_bytes();
        line.push(b'\n');
        line
    };

    let start = Instant::now();
    let sender = std::thread::spawn(move || {
        let mut writer = BufWriter::new(stream);
        writer.write_all(&request_bytes).expect("preamble");
        for _ in 0..n {
            writer.write_all(&one_request).expect("send");
        }
        writer.flush().expect("flush");
    });
    if binary {
        for _ in 0..n {
            let body = dpod_serve::wire::read_frame(&mut reader)
                .expect("frame")
                .expect("open stream");
            check(dpod_serve::wire::decode_response(&body).expect("decode"));
        }
    } else {
        let mut answer = String::new();
        for _ in 0..n {
            answer.clear();
            reader.read_line(&mut answer).expect("read");
            check(serde_json::from_str(answer.trim()).expect("decode"));
        }
    }
    let qps = n as f64 / start.elapsed().as_secs_f64();
    sender.join().expect("sender");
    handle.stop();
    qps
}

/// Aggregate plans/sec from the `dpod replay --connections N` load
/// generator (one readiness-driven client thread multiplexing all `N`
/// request/response connections) against the chosen front end on a
/// fixed 8-worker pool — the acceptance workload for the event-loop
/// serving core. `event_loops` pins the shard count so the trajectory
/// rows stay comparable across host core counts.
fn measure_replay_plansps(
    server: Arc<Server>,
    front_end: FrontEnd,
    connections: usize,
    event_loops: usize,
) -> f64 {
    let handle = dpod_serve::spawn_with(
        server,
        "127.0.0.1:0",
        SpawnOptions {
            workers: 8,
            front_end: Some(front_end),
            event_loops,
            ..SpawnOptions::default()
        },
    )
    .expect("bind");
    let plans = if smoke() { 2_000 } else { 64_000 };
    let mut stream = String::with_capacity(plans * 32);
    for i in 0..plans {
        stream.push_str(
            match i % 4 {
                0 => "\"Total\"\n".into(),
                1 => "{\"TopK\":{\"k\":5}}\n".into(),
                2 => "{\"Marginal\":{\"keep\":[0]}}\n".into(),
                _ => format!(
                    "{{\"Range\":{{\"lo\":[0,0],\"hi\":[{},{SIDE}]}}}}\n",
                    1 + i % SIDE
                ),
            }
            .as_str(),
        );
    }
    let path = std::env::temp_dir().join(format!(
        "dpod_bench_replay_{}_{:?}_{}.ndjson",
        std::process::id(),
        front_end,
        connections
    ));
    std::fs::write(&path, stream).expect("write plans");
    let summary = dpod_cli::commands::replay(&dpod_cli::commands::ReplayArgs {
        file: path.clone(),
        release: "gauss-ebp".into(),
        connect: Some(handle.addr().to_string()),
        binary: true,
        cold: false,
        answers: None,
        connections,
        slo_report: None,
    })
    .expect("replay");
    std::fs::remove_file(&path).ok();
    handle.stop();
    // First line ends "…: NNN plans/s aggregate"; take the rate.
    summary
        .lines()
        .next()
        .and_then(|line| line.rsplit(": ").next())
        .and_then(|tail| tail.split_whitespace().next())
        .and_then(|rate| rate.parse().ok())
        .expect("replay summary carries plans/s")
}

/// Aggregate queries/sec from `conns` concurrent request/response
/// clients (each its own `DPRB` connection sending one query and
/// waiting for the answer — the live-dashboard shape, no pipelining)
/// against the chosen front end on a fixed 8-worker pool. This is the
/// workload where connections ≫ workers separates the serving cores:
/// the pool serializes into worker-sized waves, the event loop keeps
/// every connection's request in flight.
fn measure_concurrent_qps(
    server: Arc<Server>,
    front_end: FrontEnd,
    conns: usize,
    per_conn: usize,
) -> f64 {
    let handle = dpod_serve::spawn_with(
        server,
        "127.0.0.1:0",
        SpawnOptions {
            workers: 8,
            front_end: Some(front_end),
            // One loop shard, pinned: these are the single-loop
            // trajectory rows, comparable across host core counts.
            event_loops: 1,
            ..SpawnOptions::default()
        },
    )
    .expect("bind");
    let addr = handle.addr();
    let start = Instant::now();
    let total: u64 = std::thread::scope(|scope| {
        let mut joins = Vec::with_capacity(conns);
        for t in 0..conns {
            joins.push(scope.spawn(move || {
                let mut client = dpod_serve::wire::Client::connect(addr).expect("connect");
                let names = ["gauss-ebp", "gauss-eug", "gauss-identity"];
                let mut answered = 0u64;
                for i in 0..per_conn {
                    let req = Request::Query {
                        release: names[(t + i) % names.len()].to_string(),
                        lo: vec![0, 0],
                        hi: vec![1 + ((t + i) % SIDE), SIDE],
                    };
                    match client.request(&req).expect("query") {
                        Response::Value { value } => {
                            black_box(value);
                            answered += 1;
                        }
                        other => panic!("concurrent query failed: {other:?}"),
                    }
                }
                answered
            }));
        }
        joins.into_iter().map(|j| j.join().expect("client")).sum()
    });
    let qps = total as f64 / start.elapsed().as_secs_f64();
    handle.stop();
    qps
}

/// Window plans/sec under a publish storm: the continual-publication
/// acceptance row. Four epochs of a `ts` series go live, then a curator
/// thread republishes the frontier epoch in a tight loop while the main
/// thread drives `Window{LastK:3, Sum, Marginal}` plans request/response
/// over `DPRB`. Each republish invalidates exactly one memoized
/// per-epoch partial, so the steady state mixes warm partials (the two
/// older epochs) with recomputes of the churning frontier.
fn measure_window_publish_storm_qps(server: Arc<Server>, n: usize) -> f64 {
    use std::sync::atomic::{AtomicBool, Ordering};

    let cfg = HarnessConfig::at_scale(Scale::Quick);
    let ds = datasets::gaussian(&cfg, 2, 0.2);
    let eps = Epsilon::new(0.5).expect("valid epsilon");
    let fresh = |seed: u64| {
        let out = Ebp::default()
            .sanitize(&ds.matrix, eps, &mut dpod_dp::seeded_rng(seed))
            .expect("sanitize");
        PublishedRelease::from_sanitized(&out)
    };
    for t in 1..=4u64 {
        server
            .publish_epoch("ts", t, fresh(200 + t))
            .expect("epoch");
    }
    let handle = spawn_legacy_pool(Arc::clone(&server));
    let req = Request::Plan {
        release: "ts".into(),
        plan: QueryPlan::Window {
            select: dpod_query::EpochSelector::LastK { k: 3 },
            merge: dpod_query::WindowMerge::Sum,
            plan: Box::new(QueryPlan::Marginal { keep: vec![0] }),
        },
    };
    let stop = AtomicBool::new(false);
    let (qps, republished) = std::thread::scope(|scope| {
        let curator = scope.spawn(|| {
            let mut republished = 0u64;
            while !stop.load(Ordering::Relaxed) {
                server
                    .publish_epoch("ts", 4, fresh(300 + republished))
                    .expect("republish");
                republished += 1;
            }
            republished
        });
        let mut client = dpod_serve::wire::Client::connect(handle.addr()).expect("connect");
        let start = Instant::now();
        for _ in 0..n {
            match client.request(&req).expect("window plan") {
                Response::Answer { answer } => {
                    black_box(answer.units());
                }
                other => panic!("window plan failed: {other:?}"),
            }
        }
        let qps = n as f64 / start.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);
        (qps, curator.join().expect("curator"))
    });
    handle.stop();
    // Leave the bench catalog as the other rows found it.
    for t in 1..=4u64 {
        server.remove_release(&format!("ts@{t}"));
    }
    println!(
        "serve_throughput window publish storm: {qps:.0} plans/s \
         while {republished} republishes landed"
    );
    qps
}

/// Plans/sec for one fixed typed plan through the in-process
/// `Server::handle` path (no serialization) — the ceiling the TCP rows
/// are chasing.
fn measure_handle_plan_qps(server: &Server, plan: QueryPlan, n: usize) -> f64 {
    let req = Request::Plan {
        release: "gauss-ebp".into(),
        plan,
    };
    let start = Instant::now();
    for _ in 0..n {
        match server.handle(&req) {
            Response::Answer { answer } => {
                black_box(answer.units());
            }
            other => panic!("plan failed: {other:?}"),
        }
    }
    n as f64 / start.elapsed().as_secs_f64()
}

fn bench_serve_throughput(c: &mut Criterion) {
    let server = build_server();
    let requests = query_requests(1_024);
    // Warm the rebuild cache so the bench measures the steady state.
    for req in requests.iter().take(3) {
        server.handle(req);
    }

    let mut group = c.benchmark_group("serve_throughput");
    group.throughput(Throughput::Elements(1));
    let mut i = 0usize;
    group.bench_function("handle/single", |b| {
        b.iter(|| {
            i = (i + 1) % requests.len();
            black_box(server.handle(&requests[i]))
        });
    });
    group.finish();

    // Trajectory measurements (fixed work, direct wall-clock). Smoke
    // mode shrinks everything: the point is then "the paths still
    // answer correctly end to end", not the numbers.
    let (rounds, tcp_n, bin_n, bin_rounds, plan_n, indexed_n, handle_n) = if smoke() {
        (1, 1_000, 2_000, 3, 20, 200, 500)
    } else {
        (10, 10_000, 50_000, 200, 400, 50_000, 200_000)
    };
    let single_qps = measure_qps(&server, &requests, rounds);
    let batch_qps = measure_batch_qps(&server, rounds);
    let tcp_qps = measure_tcp_qps(Arc::clone(&server), tcp_n);
    let tcp_bin_qps = measure_tcp_binary_qps(Arc::clone(&server), bin_n);
    let tcp_bin_batch_qps = measure_tcp_binary_batch_qps(Arc::clone(&server), bin_rounds, false);
    let tcp_bin_batch_packed_qps =
        measure_tcp_binary_batch_qps(Arc::clone(&server), bin_rounds, true);
    let (batch_bytes_unpacked, batch_bytes_packed) = measure_batch_wire_bytes(&server);
    let marginal = QueryPlan::Marginal { keep: vec![0] };
    let topk = QueryPlan::TopK { k: 10 };

    // Cold rows: the pre-index behavior (every plan rescans the dense
    // estimate). The kill-switch keeps these measurable — and the
    // trajectory labels comparable across PRs — now that plans are
    // served indexed by default.
    server.set_indexed_plans(false);
    let marginal_json_qps = measure_tcp_plan_qps(
        Arc::clone(&server),
        "gauss-ebp",
        marginal.clone(),
        plan_n,
        false,
    );
    let marginal_bin_qps = measure_tcp_plan_qps(
        Arc::clone(&server),
        "gauss-ebp",
        marginal.clone(),
        plan_n,
        true,
    );
    let topk_json_qps = measure_tcp_plan_qps(
        Arc::clone(&server),
        "gauss-ebp",
        topk.clone(),
        plan_n,
        false,
    );
    let topk_bin_qps =
        measure_tcp_plan_qps(Arc::clone(&server), "gauss-ebp", topk.clone(), plan_n, true);

    // Indexed rows: the prepare/execute path. One warming request per
    // plan shape builds the release's memoized structures; the
    // measurement is then the steady state an analyst dashboard sees.
    server.set_indexed_plans(true);
    let _ = measure_handle_plan_qps(&server, marginal.clone(), 1);
    let _ = measure_handle_plan_qps(&server, topk.clone(), 1);
    let marginal_json_ix_qps = measure_tcp_plan_qps(
        Arc::clone(&server),
        "gauss-ebp",
        marginal.clone(),
        indexed_n,
        false,
    );
    let marginal_bin_ix_qps = measure_tcp_plan_qps(
        Arc::clone(&server),
        "gauss-ebp",
        marginal.clone(),
        indexed_n,
        true,
    );
    let topk_json_ix_qps = measure_tcp_plan_qps(
        Arc::clone(&server),
        "gauss-ebp",
        topk.clone(),
        indexed_n,
        false,
    );
    let topk_bin_ix_qps = measure_tcp_plan_qps(
        Arc::clone(&server),
        "gauss-ebp",
        topk.clone(),
        indexed_n,
        true,
    );
    let marginal_handle_ix_qps = measure_handle_plan_qps(&server, marginal, handle_n);
    let topk_handle_ix_qps = measure_handle_plan_qps(&server, topk, handle_n);

    // Pyramid rows: a 1024×1024 release (built straight from entries —
    // the pyramid is pure post-processing, so no sanitizer pass is
    // needed to exercise it) answering the whole-grid marginal
    // (`keep: [0, 1]`, the heatmap-render shape) two ways. The
    // leaf-indexed rows replay the `*_indexed` labels at side 1024 and
    // must ship all 1024² cells per answer; the `*_pyramid` rows route
    // `DrillDown { level: 4 }` to a memoized 64×64 coarse level —
    // 256× fewer cells scanned and shipped, for zero extra privacy
    // budget, bit-identical to coarsening the leaf answer.
    const BIG_SIDE: usize = 1_024;
    const BIG_LEVEL: u32 = 4;
    let big = "synthetic-1024";
    {
        let shape = dpod_fmatrix::Shape::new(vec![BIG_SIDE, BIG_SIDE]).expect("shape");
        let values: Vec<f64> = (0..shape.size())
            .map(|i| (i.wrapping_mul(2_654_435_761) % 1_000) as f64 / 7.0)
            .collect();
        let matrix = dpod_fmatrix::DenseMatrix::from_vec(shape, values).expect("matrix");
        let sanitized = dpod_core::SanitizedMatrix::from_entries("synthetic", 0.5, matrix);
        server
            .catalog()
            .publish(big, PublishedRelease::from_sanitized(&sanitized));
    }
    let big_marginal = QueryPlan::Marginal { keep: vec![0, 1] };
    let drill_marginal = QueryPlan::DrillDown {
        level: BIG_LEVEL,
        plan: Box::new(big_marginal.clone()),
    };
    // Whole-grid coarse range: every leaf cell, summed at level 4.
    let coarse_dim = ((BIG_SIDE - 1) >> BIG_LEVEL) + 1;
    let drill_range = QueryPlan::DrillDown {
        level: BIG_LEVEL,
        plan: Box::new(QueryPlan::Range {
            lo: vec![0, 0],
            hi: vec![coarse_dim, coarse_dim],
        }),
    };
    // One warming request per plan shape, as for the 256² indexed rows.
    for plan in [
        big_marginal.clone(),
        drill_marginal.clone(),
        drill_range.clone(),
    ] {
        match server.handle(&Request::Plan {
            release: big.into(),
            plan,
        }) {
            Response::Answer { .. } => {}
            other => panic!("pyramid warmup failed: {other:?}"),
        }
    }
    // The leaf answers are megabytes each, so the leaf rows get a
    // smaller fixed workload than the coarse rows.
    let (big_leaf_n, big_pyr_n) = if smoke() { (20, 200) } else { (1_000, 20_000) };
    let big_marginal_json_ix_qps = measure_tcp_plan_qps(
        Arc::clone(&server),
        big,
        big_marginal.clone(),
        big_leaf_n,
        false,
    );
    let big_marginal_bin_ix_qps =
        measure_tcp_plan_qps(Arc::clone(&server), big, big_marginal, big_leaf_n, true);
    let pyr_marginal_json_qps = measure_tcp_plan_qps(
        Arc::clone(&server),
        big,
        drill_marginal.clone(),
        big_pyr_n,
        false,
    );
    let pyr_marginal_bin_qps =
        measure_tcp_plan_qps(Arc::clone(&server), big, drill_marginal, big_pyr_n, true);
    let pyr_range_bin_qps =
        measure_tcp_plan_qps(Arc::clone(&server), big, drill_range, big_pyr_n, true);
    server.remove_release(big);

    // Concurrent-connection rows, fixed 8-worker pool: the event loop
    // at 1 / 64 / 512 connections, and the legacy pool at 64 (where its
    // thread-per-connection model serializes into waves of 8).
    let (ev_n1, ev_n64, ev_n512, pool_n64) = if smoke() {
        (200, 6, 2, 6)
    } else {
        (20_000, 300, 40, 300)
    };
    let ev_c1_qps = measure_concurrent_qps(Arc::clone(&server), FrontEnd::Event, 1, ev_n1);
    let ev_c64_qps = measure_concurrent_qps(Arc::clone(&server), FrontEnd::Event, 64, ev_n64);
    let ev_c512_qps = measure_concurrent_qps(Arc::clone(&server), FrontEnd::Event, 512, ev_n512);
    let pool_c64_qps = measure_concurrent_qps(Arc::clone(&server), FrontEnd::Pool, 64, pool_n64);

    // The acceptance comparison: the replay load generator (plans, not
    // bare ranges) at 64 connections against both serving cores, plus
    // the sharded headline — 1024 connections over four SO_REUSEPORT
    // loop shards, the fan-in a single loop thread serialized on.
    let replay_ev_c64 = measure_replay_plansps(Arc::clone(&server), FrontEnd::Event, 64, 1);
    let replay_pool_c64 = measure_replay_plansps(Arc::clone(&server), FrontEnd::Pool, 64, 1);
    let replay_ev_c1024_s4 = measure_replay_plansps(Arc::clone(&server), FrontEnd::Event, 1024, 4);

    // Continual publication: sliding-window plans against a series whose
    // frontier epoch is being republished concurrently.
    let storm_n = if smoke() { 200 } else { 10_000 };
    let window_storm_qps = measure_window_publish_storm_qps(Arc::clone(&server), storm_n);

    println!(
        "serve_throughput: single {:.0} q/s, batch {:.0} q/s, tcp-json {:.0} q/s, \
         tcp-binary {:.0} q/s, tcp-binary-batch {:.0} q/s (packed {:.0} q/s)",
        single_qps, batch_qps, tcp_qps, tcp_bin_qps, tcp_bin_batch_qps, tcp_bin_batch_packed_qps
    );
    println!(
        "serve_throughput batch wire bytes (req+resp frames, {BATCH} ranges): \
         unpacked {batch_bytes_unpacked} B, packed {batch_bytes_packed} B \
         ({:.2}x smaller)",
        batch_bytes_unpacked as f64 / batch_bytes_packed as f64
    );
    println!(
        "serve_throughput plans (cold scan): marginal json {:.0}/s binary {:.0}/s, \
         topk json {:.0}/s binary {:.0}/s",
        marginal_json_qps, marginal_bin_qps, topk_json_qps, topk_bin_qps
    );
    println!(
        "serve_throughput plans (indexed): marginal json {:.0}/s binary {:.0}/s \
         in-process {:.0}/s, topk json {:.0}/s binary {:.0}/s in-process {:.0}/s",
        marginal_json_ix_qps,
        marginal_bin_ix_qps,
        marginal_handle_ix_qps,
        topk_json_ix_qps,
        topk_bin_ix_qps,
        topk_handle_ix_qps
    );
    println!(
        "serve_throughput pyramid (1024², drill level {BIG_LEVEL}): marginal json {:.0}/s \
         binary {:.0}/s, coarse range binary {:.0}/s; leaf-indexed marginal json {:.0}/s \
         binary {:.0}/s ({:.1}x binary speedup)",
        pyr_marginal_json_qps,
        pyr_marginal_bin_qps,
        pyr_range_bin_qps,
        big_marginal_json_ix_qps,
        big_marginal_bin_ix_qps,
        pyr_marginal_bin_qps / big_marginal_bin_ix_qps
    );
    println!(
        "serve_throughput concurrent (8 workers, request/response): eventloop c1 {:.0} q/s, \
         c64 {:.0} q/s, c512 {:.0} q/s; pool c64 {:.0} q/s",
        ev_c1_qps, ev_c64_qps, ev_c512_qps, pool_c64_qps
    );
    println!(
        "serve_throughput replay --connections 64 (8 workers): eventloop {:.0} plans/s, \
         pool {:.0} plans/s; --connections 1024 on 4 loop shards: {:.0} plans/s",
        replay_ev_c64, replay_pool_c64, replay_ev_c1024_s4
    );
    if smoke() {
        println!("smoke mode: skipping BENCH_serve.json update");
        return;
    }

    let triples = vec![
        ("handle_single".to_string(), SIDE as f64, single_qps),
        ("handle_batch1000".to_string(), SIDE as f64, batch_qps),
        ("tcp_pipelined".to_string(), SIDE as f64, tcp_qps),
        ("tcp_binary_pipelined".to_string(), SIDE as f64, tcp_bin_qps),
        (
            "tcp_binary_batch1000".to_string(),
            SIDE as f64,
            tcp_bin_batch_qps,
        ),
        (
            "tcp_binary_batch1000_packed".to_string(),
            SIDE as f64,
            tcp_bin_batch_packed_qps,
        ),
        // Wire bytes per 1000-range batch round trip (request +
        // response frames) — lower is better, unlike the rate rows.
        (
            "wire_bytes_batch1000_unpacked".to_string(),
            SIDE as f64,
            batch_bytes_unpacked as f64,
        ),
        (
            "wire_bytes_batch1000_packed".to_string(),
            SIDE as f64,
            batch_bytes_packed as f64,
        ),
        (
            "tcp_plan_marginal_json".to_string(),
            SIDE as f64,
            marginal_json_qps,
        ),
        (
            "tcp_plan_marginal_binary".to_string(),
            SIDE as f64,
            marginal_bin_qps,
        ),
        ("tcp_plan_topk_json".to_string(), SIDE as f64, topk_json_qps),
        (
            "tcp_plan_topk_binary".to_string(),
            SIDE as f64,
            topk_bin_qps,
        ),
        (
            "tcp_plan_marginal_json_indexed".to_string(),
            SIDE as f64,
            marginal_json_ix_qps,
        ),
        (
            "tcp_plan_marginal_binary_indexed".to_string(),
            SIDE as f64,
            marginal_bin_ix_qps,
        ),
        (
            "tcp_plan_topk_json_indexed".to_string(),
            SIDE as f64,
            topk_json_ix_qps,
        ),
        (
            "tcp_plan_topk_binary_indexed".to_string(),
            SIDE as f64,
            topk_bin_ix_qps,
        ),
        (
            "handle_plan_marginal_indexed".to_string(),
            SIDE as f64,
            marginal_handle_ix_qps,
        ),
        (
            "handle_plan_topk_indexed".to_string(),
            SIDE as f64,
            topk_handle_ix_qps,
        ),
        // Pyramid rows at side 1024: the leaf-indexed marginal extends
        // its existing series with a 1024² point, the `*_pyramid` rows
        // are the drill-down path over the same release.
        (
            "tcp_plan_marginal_json_indexed".to_string(),
            BIG_SIDE as f64,
            big_marginal_json_ix_qps,
        ),
        (
            "tcp_plan_marginal_binary_indexed".to_string(),
            BIG_SIDE as f64,
            big_marginal_bin_ix_qps,
        ),
        (
            "tcp_plan_marginal_json_pyramid".to_string(),
            BIG_SIDE as f64,
            pyr_marginal_json_qps,
        ),
        (
            "tcp_plan_marginal_binary_pyramid".to_string(),
            BIG_SIDE as f64,
            pyr_marginal_bin_qps,
        ),
        (
            "tcp_plan_range_binary_pyramid".to_string(),
            BIG_SIDE as f64,
            pyr_range_bin_qps,
        ),
        (
            "tcp_binary_eventloop_c1".to_string(),
            SIDE as f64,
            ev_c1_qps,
        ),
        (
            "tcp_binary_eventloop_c64".to_string(),
            SIDE as f64,
            ev_c64_qps,
        ),
        (
            "tcp_binary_eventloop_c512".to_string(),
            SIDE as f64,
            ev_c512_qps,
        ),
        ("tcp_binary_pool_c64".to_string(), SIDE as f64, pool_c64_qps),
        (
            "replay_plans_c64_eventloop".to_string(),
            SIDE as f64,
            replay_ev_c64,
        ),
        (
            "replay_plans_c64_pool".to_string(),
            SIDE as f64,
            replay_pool_c64,
        ),
        (
            "replay_plans_c1024_eventloop_shards4".to_string(),
            SIDE as f64,
            replay_ev_c1024_s4,
        ),
        (
            "window_lastk3_publish_storm".to_string(),
            SIDE as f64,
            window_storm_qps,
        ),
    ];
    let experiment = Experiment {
        id: "BENCH_serve".into(),
        description: format!(
            "Serving throughput: random range queries/sec over a warm \
             catalog of 3 {SIDE}x{SIDE} releases"
        ),
        panels: vec![Panel::from_triples(
            "queries per second (warm cache)",
            "release side",
            "queries/sec",
            &triples,
        )],
    };
    let out_dir = std::env::var("DPOD_BENCH_OUT").unwrap_or_else(|_| ".".into());
    match experiment.save_json(std::path::Path::new(&out_dir)) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("!! could not write BENCH_serve.json: {e}"),
    }
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
