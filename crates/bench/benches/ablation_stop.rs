//! Runtime ablation of the DAF stop policy (accuracy ablation lives in
//! `reproduce ablation`): pruning is also what makes DAF *fast* — this
//! bench quantifies how much work each policy saves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpod_bench::{datasets::city_2d, HarnessConfig, Scale};
use dpod_core::{
    daf::{DafEntropy, StopPolicy},
    Mechanism,
};
use dpod_data::City;
use dpod_dp::Epsilon;

fn bench_stop_policies(c: &mut Criterion) {
    let cfg = HarnessConfig::at_scale(Scale::Quick);
    let ds = city_2d(&cfg, City::NewYork);
    let eps = Epsilon::new(0.1).expect("valid epsilon");
    let mut group = c.benchmark_group("daf_stop_policy");
    group.sample_size(10);
    let policies = [
        ("never", StopPolicy::Never),
        (
            "noise_dominated_x2",
            StopPolicy::NoiseDominated { factor: 2.0 },
        ),
        (
            "noise_dominated_x8",
            StopPolicy::NoiseDominated { factor: 8.0 },
        ),
        ("count_below_50", StopPolicy::CountBelow(50.0)),
    ];
    for (name, stop) in policies {
        let mech = DafEntropy {
            stop,
            ..DafEntropy::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &ds.matrix, |b, input| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = dpod_dp::seeded_rng(seed);
                mech.sanitize(input, eps, &mut rng).expect("sanitize")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stop_policies);
criterion_main!(benches);
