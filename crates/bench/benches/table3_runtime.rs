//! Criterion version of Table 3: sanitize wall-clock per mechanism on 2-D
//! city data, ε = 0.1.
//!
//! Uses the Quick-scale grid (256²) so a full `cargo bench` stays in
//! minutes; the paper's claim under reproduction is the *ordering* (DAF
//! methods fastest because they prune; full-domain releases slowest),
//! which is scale-stable. `reproduce table3` runs the paper-size one-shot
//! variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpod_bench::{datasets::city_2d, HarnessConfig, Scale};
use dpod_core::paper_suite;
use dpod_data::City;
use dpod_dp::Epsilon;

fn bench_table3(c: &mut Criterion) {
    let cfg = HarnessConfig::at_scale(Scale::Quick);
    let eps = Epsilon::new(0.1).expect("valid epsilon");
    let mut group = c.benchmark_group("table3_runtime");
    group.sample_size(10);
    for city in City::ALL {
        let ds = city_2d(&cfg, city);
        for mech in paper_suite() {
            group.bench_with_input(
                BenchmarkId::new(mech.name(), city.name()),
                &ds.matrix,
                |b, input| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        let mut rng = dpod_dp::seeded_rng(seed);
                        mech.sanitize(input, eps, &mut rng).expect("sanitize")
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
