//! Query-side throughput: answering range queries against a sanitized
//! release. The analyst-facing cost of the publication model — `O(2^d)`
//! per query via the embedded prefix table — is what makes the released
//! matrices practical; this bench pins it.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpod_bench::{datasets, HarnessConfig, Scale};
use dpod_core::{grid::Ebp, Mechanism};
use dpod_dp::Epsilon;
use dpod_query::workload::QueryWorkload;

fn bench_query_throughput(c: &mut Criterion) {
    let cfg = HarnessConfig::at_scale(Scale::Quick);
    let eps = Epsilon::new(0.5).expect("valid epsilon");
    let mut group = c.benchmark_group("query_throughput");
    for d in [2usize, 4, 6] {
        let ds = datasets::gaussian(&cfg, d, 0.1);
        let mut rng = dpod_dp::seeded_rng(7);
        let sanitized = Ebp::default()
            .sanitize(&ds.matrix, eps, &mut rng)
            .expect("sanitize");
        let queries = QueryWorkload::Random.draw_many(ds.matrix.shape(), 1_000, &mut rng);
        group.throughput(Throughput::Elements(queries.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("range_sum", format!("{d}d")),
            &queries,
            |b, qs| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for q in qs {
                        acc += sanitized.range_sum(q);
                    }
                    black_box(acc)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_query_throughput);
criterion_main!(benches);
