//! Regenerates the paper's tables and figures.
//!
//! ```text
//! reproduce <experiment>... [--quick] [--seed N] [--out DIR]
//!
//! experiments: fig3 fig4 fig5 fig6 fig7 fig8 table3 ablation extensions all
//! --quick      reduced datasets/workloads (minutes instead of tens of minutes)
//! --seed N     base seed (default 0xD90D)
//! --out DIR    JSON/text output directory (default ./results)
//! ```
//!
//! Accuracy experiments print one aligned table per paper panel and write
//! `DIR/<id>.json`; fig3 writes `DIR/fig3.txt`.

use dpod_bench::{experiments, HarnessConfig, Scale};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args) {
        Ok((cfg, ids)) => {
            for id in &ids {
                run(&cfg, id);
            }
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!(
                "usage: reproduce <fig3|fig4|fig5|fig6|fig7|fig8|table3|ablation|extensions|all>... [--quick] [--seed N] [--out DIR]"
            );
            ExitCode::FAILURE
        }
    }
}

const ALL: [&str; 9] = [
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "table3",
    "ablation",
    "extensions",
];

fn parse(args: &[String]) -> Result<(HarnessConfig, Vec<String>), String> {
    let mut cfg = HarnessConfig::default();
    let mut ids = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => cfg.scale = Scale::Quick,
            "--tiny" => cfg.scale = Scale::Tiny, // undocumented: CI smoke runs
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                cfg.seed = v.parse().map_err(|_| format!("bad seed '{v}'"))?;
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a value")?;
                cfg.out_dir = v.into();
            }
            "all" => ids.extend(ALL.iter().map(|s| s.to_string())),
            id if ALL.contains(&id) => ids.push(id.to_string()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if ids.is_empty() {
        return Err("no experiment selected".into());
    }
    ids.dedup();
    Ok((cfg, ids))
}

fn run(cfg: &HarnessConfig, id: &str) {
    let started = std::time::Instant::now();
    eprintln!(">> running {id} at {:?} scale…", cfg.scale);
    match id {
        "fig3" => {
            let art = experiments::fig3(cfg);
            println!("{art}");
            if std::fs::create_dir_all(&cfg.out_dir).is_ok() {
                let path = cfg.out_dir.join("fig3.txt");
                if let Err(e) = std::fs::write(&path, &art) {
                    eprintln!("!! could not write {}: {e}", path.display());
                } else {
                    eprintln!(">> wrote {}", path.display());
                }
            }
        }
        "fig7" => {
            // Reuse a cached fig6 run when available; recompute otherwise.
            let cached = cfg.out_dir.join("fig6.json");
            let fig6 = std::fs::read_to_string(&cached)
                .ok()
                .and_then(|s| serde_json::from_str(&s).ok())
                .unwrap_or_else(|| {
                    let e = experiments::fig6(cfg);
                    save(cfg, &e);
                    e
                });
            let e = experiments::fig7_from(&fig6);
            e.print();
            save(cfg, &e);
        }
        _ => {
            let e = match id {
                "fig4" => experiments::fig4(cfg),
                "fig5" => experiments::fig5(cfg),
                "fig6" => experiments::fig6(cfg),
                "fig8" => experiments::fig8(cfg),
                "table3" => experiments::table3(cfg),
                "ablation" => experiments::ablation(cfg),
                "extensions" => experiments::extensions(cfg),
                other => unreachable!("unvalidated experiment id {other}"),
            };
            e.print();
            save(cfg, &e);
        }
    }
    eprintln!(">> {id} done in {:.1?}", started.elapsed());
}

fn save(cfg: &HarnessConfig, e: &dpod_bench::report::Experiment) {
    match e.save_json(&cfg.out_dir) {
        Ok(path) => eprintln!(">> wrote {}", path.display()),
        Err(err) => eprintln!("!! could not persist {}: {err}", e.id),
    }
}
