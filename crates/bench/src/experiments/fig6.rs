//! Figures 6 and 7: real-data (city-model) 2-D population histograms.
//! 12 panels — 3 cities × {random, 1 %, 5 %, 10 % coverage}; MRE vs ε.
//! Fig. 7 is Fig. 6 restricted to the four competitive methods.

use crate::datasets::city_2d;
use crate::experiments::PAPER_EPSILONS;
use crate::report::{Experiment, Panel};
use crate::runner::{sweep, Cell, TruthContext};
use crate::HarnessConfig;
use dpod_core::paper_suite;
use dpod_data::City;
use dpod_query::workload::QueryWorkload;

/// The paper's four query workloads for the city experiments.
pub fn workloads() -> [QueryWorkload; 4] {
    [
        QueryWorkload::Random,
        QueryWorkload::FixedCoverage { coverage: 0.01 },
        QueryWorkload::FixedCoverage { coverage: 0.05 },
        QueryWorkload::FixedCoverage { coverage: 0.10 },
    ]
}

/// Runs the Fig. 6 experiment (all six mechanisms, log-scale in the paper).
pub fn fig6(cfg: &HarnessConfig) -> Experiment {
    let mechanisms = paper_suite();
    let mut panels = Vec::new();
    for city in City::ALL {
        let ds = city_2d(cfg, city);
        for w in workloads() {
            let ctx = TruthContext::new(
                &ds.matrix,
                w,
                cfg.num_queries(),
                cfg.sub_seed(&format!("fig6/queries/{}/{}", city.name(), w.label())),
            );
            let mut cells = Vec::new();
            for &eps in &PAPER_EPSILONS {
                for mech in &mechanisms {
                    cells.push(Cell {
                        series: mech.name().to_string(),
                        x: eps,
                        input: &ds.matrix,
                        ctx: &ctx,
                        mechanism: mech,
                        epsilon: eps,
                        seed: cfg.sub_seed(&format!(
                            "fig6/run/{}/{}/e{eps}/{}",
                            city.name(),
                            w.label(),
                            mech.name()
                        )),
                    });
                }
            }
            let triples = sweep(cells);
            panels.push(Panel::from_triples(
                &format!("{}, {} queries", city.name(), w.label()),
                "ε_tot",
                "MRE (%)",
                &triples,
            ));
        }
    }
    Experiment {
        id: "fig6".into(),
        description: "City population histograms in 2D, all methods (paper Fig. 6)".into(),
        panels,
    }
}

/// The methods kept in Fig. 7 (the paper drops IDENTITY and MKM after
/// Fig. 6 shows them an order of magnitude worse).
pub const FIG7_METHODS: [&str; 4] = ["EUG", "EBP", "DAF-Entropy", "DAF-Homogeneity"];

/// Derives Fig. 7 from a computed Fig. 6 by dropping the baselines.
pub fn fig7_from(fig6: &Experiment) -> Experiment {
    let panels = fig6
        .panels
        .iter()
        .map(|p| Panel {
            title: p.title.clone(),
            x_label: p.x_label.clone(),
            y_label: p.y_label.clone(),
            series: p
                .series
                .iter()
                .filter(|s| FIG7_METHODS.contains(&s.label.as_str()))
                .cloned()
                .collect(),
        })
        .collect();
    Experiment {
        id: "fig7".into(),
        description: "City population histograms in 2D, no baselines (paper Fig. 7)".into(),
        panels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_fig6_structure_and_fig7_filter() {
        let cfg = HarnessConfig::at_scale(crate::Scale::Tiny);
        let e6 = fig6(&cfg);
        assert_eq!(e6.panels.len(), 12);
        for p in &e6.panels {
            assert_eq!(p.series.len(), 6);
            for s in &p.series {
                assert_eq!(s.points.len(), PAPER_EPSILONS.len());
            }
        }
        let e7 = fig7_from(&e6);
        assert_eq!(e7.panels.len(), 12);
        for p in &e7.panels {
            assert_eq!(p.series.len(), 4);
            assert!(p
                .series
                .iter()
                .all(|s| FIG7_METHODS.contains(&s.label.as_str())));
        }
    }
}
