//! Table 3: running time of every mechanism on the 2-D city histograms at
//! ε = 0.1.
//!
//! This is the one-shot wall-clock version used by the `reproduce` binary;
//! `benches/table3_runtime.rs` holds the statistically sound Criterion
//! variant. The paper's claim is relative (DAF methods are faster because
//! they stop splitting early; everything finishes in minutes), so the
//! ordering, not the absolute seconds, is the reproduction target.

use crate::datasets::city_2d;
use crate::report::{Experiment, Panel, Series};
use crate::HarnessConfig;
use dpod_core::paper_suite;
use dpod_data::City;
use dpod_dp::Epsilon;
use std::time::Instant;

/// The table's fixed privacy budget.
pub const EPSILON: f64 = 0.1;

/// Runs the experiment. One panel per city; one single-point series per
/// mechanism whose y value is the sanitize wall-clock in seconds.
pub fn table3(cfg: &HarnessConfig) -> Experiment {
    let mechanisms = paper_suite();
    let eps = Epsilon::new(EPSILON).expect("valid epsilon");
    let mut panels = Vec::new();
    for city in City::ALL {
        let ds = city_2d(cfg, city);
        let mut series = Vec::new();
        for mech in &mechanisms {
            let mut rng = dpod_dp::seeded_rng(cfg.sub_seed(&format!(
                "table3/{}/{}",
                city.name(),
                mech.name()
            )));
            let start = Instant::now();
            let out = mech
                .sanitize(&ds.matrix, eps, &mut rng)
                .expect("table3 sanitization");
            let secs = start.elapsed().as_secs_f64();
            // Keep the release alive until timing ends (drop cost counts in
            // the paper's end-to-end numbers too).
            drop(out);
            series.push(Series {
                label: mech.name().to_string(),
                points: vec![(0.0, secs)],
            });
        }
        panels.push(Panel {
            title: format!("{} ({}², ε={EPSILON})", city.name(), cfg.city_grid()),
            x_label: "-".into(),
            y_label: "seconds".into(),
            series,
        });
    }
    Experiment {
        id: "table3".into(),
        description: "Mechanism running time, 2D city data (paper Table 3)".into(),
        panels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_table3_times_all_mechanisms() {
        let cfg = HarnessConfig::at_scale(crate::Scale::Tiny);
        let e = table3(&cfg);
        assert_eq!(e.panels.len(), 3);
        for p in &e.panels {
            assert_eq!(p.series.len(), 6);
            for s in &p.series {
                let (_, secs) = s.points[0];
                assert!(secs >= 0.0 && secs.is_finite());
            }
        }
    }
}
