//! Figure 4: synthetic Gaussian data, random shape/size queries.
//! 9 panels — d ∈ {2, 4, 6} × ε ∈ {0.1, 0.3, 0.5}; MRE vs cluster spread.

use crate::datasets::{gaussian, Dataset};
use crate::experiments::PAPER_EPSILONS;
use crate::report::{Experiment, Panel};
use crate::runner::{sweep, Cell, TruthContext};
use crate::HarnessConfig;
use dpod_core::paper_suite;
use dpod_query::workload::QueryWorkload;

/// Cluster spread values (σ as a fraction of the domain side). The paper
/// sweeps the Gaussian variance; fractions keep the skew comparable across
/// dimensionalities (DESIGN.md §4).
pub const SIGMA_FRACTIONS: [f64; 5] = [0.02, 0.05, 0.10, 0.20, 0.40];

/// Dimensionalities of the synthetic sweep.
pub const DIMS: [usize; 3] = [2, 4, 6];

/// Runs the experiment.
pub fn fig4(cfg: &HarnessConfig) -> Experiment {
    let mechanisms = paper_suite();
    let mut panels = Vec::new();
    for &d in &DIMS {
        // Datasets and truth contexts are shared across the ε panels.
        let datasets: Vec<Dataset> = SIGMA_FRACTIONS
            .iter()
            .map(|&sf| gaussian(cfg, d, sf))
            .collect();
        let contexts: Vec<TruthContext> = datasets
            .iter()
            .enumerate()
            .map(|(i, ds)| {
                TruthContext::new(
                    &ds.matrix,
                    QueryWorkload::Random,
                    cfg.num_queries(),
                    cfg.sub_seed(&format!("fig4/queries/d{d}/{i}")),
                )
            })
            .collect();
        for &eps in &PAPER_EPSILONS {
            let mut cells = Vec::new();
            for (ds, ctx, &sf) in itertools3(&datasets, &contexts, &SIGMA_FRACTIONS) {
                for mech in &mechanisms {
                    cells.push(Cell {
                        series: mech.name().to_string(),
                        x: sf,
                        input: &ds.matrix,
                        ctx,
                        mechanism: mech,
                        epsilon: eps,
                        seed: cfg.sub_seed(&format!("fig4/run/d{d}/e{eps}/sf{sf}/{}", mech.name())),
                    });
                }
            }
            let triples = sweep(cells);
            panels.push(Panel::from_triples(
                &format!("{d}D, ε_tot = {eps}"),
                "σ/width",
                "MRE (%)",
                &triples,
            ));
        }
    }
    Experiment {
        id: "fig4".into(),
        description: "Gaussian synthetic data, random shape/size queries (paper Fig. 4)".into(),
        panels,
    }
}

/// Zips three equal-length slices (the std `zip` chains get unreadable).
fn itertools3<'a, A, B, C>(
    a: &'a [A],
    b: &'a [B],
    c: &'a [C],
) -> impl Iterator<Item = (&'a A, &'a B, &'a C)> {
    debug_assert!(a.len() == b.len() && b.len() == c.len());
    a.iter()
        .zip(b.iter())
        .zip(c.iter())
        .map(|((x, y), z)| (x, y, z))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_fig4_has_nine_panels_and_six_series() {
        // Shrunken harness: the structure must match the paper's figure.
        let cfg = HarnessConfig::at_scale(crate::Scale::Tiny);
        let e = fig4(&cfg);
        assert_eq!(e.panels.len(), 9);
        for p in &e.panels {
            assert_eq!(p.series.len(), 6, "panel {}", p.title);
            for s in &p.series {
                assert_eq!(s.points.len(), SIGMA_FRACTIONS.len());
                assert!(s.points.iter().all(|&(_, y)| y.is_finite()));
            }
        }
    }
}
