//! Figure 8: 4-D origin–destination matrices from city trajectories.
//! 12 panels — 3 cities × {random, 1 %, 5 %, 10 % coverage}; MRE vs ε;
//! the four competitive methods.

use crate::datasets::city_od;
use crate::experiments::{fig6::workloads, PAPER_EPSILONS};
use crate::report::{Experiment, Panel};
use crate::runner::{sweep, Cell, TruthContext};
use crate::HarnessConfig;
use dpod_core::{daf, grid, DynMechanism};
use dpod_data::City;

/// The mechanisms of Fig. 8 (the paper's competitive set).
pub fn fig8_mechanisms() -> Vec<DynMechanism> {
    vec![
        Box::new(grid::Eug::default()),
        Box::new(grid::Ebp::default()),
        Box::new(daf::DafEntropy::default()),
        Box::new(daf::DafHomogeneity::default()),
    ]
}

/// Runs the experiment.
pub fn fig8(cfg: &HarnessConfig) -> Experiment {
    let mechanisms = fig8_mechanisms();
    let mut panels = Vec::new();
    for city in City::ALL {
        let ds = city_od(cfg, city, 0);
        for w in workloads() {
            let ctx = TruthContext::new(
                &ds.matrix,
                w,
                cfg.num_queries(),
                cfg.sub_seed(&format!("fig8/queries/{}/{}", city.name(), w.label())),
            );
            let mut cells = Vec::new();
            for &eps in &PAPER_EPSILONS {
                for mech in &mechanisms {
                    cells.push(Cell {
                        series: mech.name().to_string(),
                        x: eps,
                        input: &ds.matrix,
                        ctx: &ctx,
                        mechanism: mech,
                        epsilon: eps,
                        seed: cfg.sub_seed(&format!(
                            "fig8/run/{}/{}/e{eps}/{}",
                            city.name(),
                            w.label(),
                            mech.name()
                        )),
                    });
                }
            }
            let triples = sweep(cells);
            panels.push(Panel::from_triples(
                &format!("{}, OD 4D, {} queries", city.name(), w.label()),
                "ε_tot",
                "MRE (%)",
                &triples,
            ));
        }
    }
    Experiment {
        id: "fig8".into(),
        description: "Origin-destination matrices in 4D, city data (paper Fig. 8)".into(),
        panels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_fig8_structure() {
        let cfg = HarnessConfig::at_scale(crate::Scale::Tiny);
        let e = fig8(&cfg);
        assert_eq!(e.panels.len(), 12);
        for p in &e.panels {
            assert_eq!(p.series.len(), 4);
            for s in &p.series {
                assert_eq!(s.points.len(), PAPER_EPSILONS.len());
                assert!(s.points.iter().all(|&(_, y)| y.is_finite()));
            }
        }
    }
}
