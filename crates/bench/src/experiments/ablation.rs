//! Ablations over the design choices DESIGN.md calls out:
//!
//! * **A1** — DAF stop policy (Never vs count threshold vs
//!   noise-dominated factor);
//! * **A2** — EUG's uniformity constant c₀ and DAF-Homogeneity's
//!   partition-budget ratio q;
//! * **A4** — non-negativity post-processing;
//! * **A5** — Laplace vs geometric noise on the IDENTITY baseline;
//! * **A6** — tree-consistency post-processing for DAF-Entropy.

use crate::datasets::{city_2d, gaussian};
use crate::report::{Experiment, Panel};
use crate::runner::{sweep, Cell, TruthContext};
use crate::HarnessConfig;
use dpod_core::{
    baselines::Identity,
    daf::{DafEntropy, DafHomogeneity, StopPolicy},
    grid::Eug,
    DynMechanism, Mechanism, MechanismError, SanitizedMatrix,
};
use dpod_dp::{geometric::GeometricMechanism, Epsilon};
use dpod_fmatrix::DenseMatrix;
use dpod_query::workload::QueryWorkload;
use rand::RngCore;

/// The fixed budget for the ablations (the paper's strictest setting).
pub const EPSILON: f64 = 0.1;

/// Runs all ablations.
pub fn ablation(cfg: &HarnessConfig) -> Experiment {
    let panels = vec![
        stop_policy_panel(cfg),
        c0_panel(cfg),
        q_panel(cfg),
        postprocess_panel(cfg),
        noise_kind_panel(cfg),
        consistency_panel(cfg),
    ];
    Experiment {
        id: "ablation".into(),
        description: "Ablations over design choices (DESIGN.md §4, A1/A2/A4/A5/A6)".into(),
        panels,
    }
}

/// A1: stop-policy sweep for DAF-Entropy on the New York histogram.
fn stop_policy_panel(cfg: &HarnessConfig) -> Panel {
    let ds = city_2d(cfg, dpod_data::City::NewYork);
    let ctx = TruthContext::new(
        &ds.matrix,
        QueryWorkload::Random,
        cfg.num_queries(),
        cfg.sub_seed("ablation/stop/queries"),
    );
    let variants: Vec<(String, f64, DynMechanism)> = vec![
        ("Never".into(), 0.0, boxed_daf(StopPolicy::Never)),
        (
            "NoiseDominated".into(),
            1.0,
            boxed_daf(StopPolicy::NoiseDominated { factor: 1.0 }),
        ),
        (
            "NoiseDominated".into(),
            2.0,
            boxed_daf(StopPolicy::NoiseDominated { factor: 2.0 }),
        ),
        (
            "NoiseDominated".into(),
            4.0,
            boxed_daf(StopPolicy::NoiseDominated { factor: 4.0 }),
        ),
        (
            "NoiseDominated".into(),
            8.0,
            boxed_daf(StopPolicy::NoiseDominated { factor: 8.0 }),
        ),
        (
            "CountBelow".into(),
            1.0,
            boxed_daf(StopPolicy::CountBelow(10.0)),
        ),
        (
            "CountBelow".into(),
            2.0,
            boxed_daf(StopPolicy::CountBelow(50.0)),
        ),
        (
            "CountBelow".into(),
            4.0,
            boxed_daf(StopPolicy::CountBelow(200.0)),
        ),
    ];
    let cells: Vec<Cell<'_>> = variants
        .iter()
        .map(|(label, x, mech)| Cell {
            series: label.clone(),
            x: *x,
            input: &ds.matrix,
            ctx: &ctx,
            mechanism: mech,
            epsilon: EPSILON,
            seed: cfg.sub_seed(&format!("ablation/stop/{label}/{x}")),
        })
        .collect();
    let triples = sweep(cells);
    Panel::from_triples(
        "A1: DAF-Entropy stop policy (New York 2D, ε=0.1)",
        "policy parameter",
        "MRE (%)",
        &triples,
    )
}

fn boxed_daf(stop: StopPolicy) -> DynMechanism {
    Box::new(DafEntropy {
        stop,
        ..DafEntropy::default()
    })
}

/// A2a: EUG's c₀ sweep on 4-D Gaussian data (where grid sizing matters
/// most).
fn c0_panel(cfg: &HarnessConfig) -> Panel {
    let ds = gaussian(cfg, 4, 0.1);
    let ctx = TruthContext::new(
        &ds.matrix,
        QueryWorkload::Random,
        cfg.num_queries(),
        cfg.sub_seed("ablation/c0/queries"),
    );
    let c0s = [2.5, 5.0, dpod_core::granularity::DEFAULT_C0, 10.0, 20.0];
    let mechs: Vec<(f64, DynMechanism)> = c0s
        .iter()
        .map(|&c0| {
            (
                c0,
                Box::new(Eug {
                    c0,
                    ..Eug::default()
                }) as DynMechanism,
            )
        })
        .collect();
    let cells: Vec<Cell<'_>> = mechs
        .iter()
        .map(|(c0, mech)| Cell {
            series: "EUG".into(),
            x: *c0,
            input: &ds.matrix,
            ctx: &ctx,
            mechanism: mech,
            epsilon: EPSILON,
            seed: cfg.sub_seed(&format!("ablation/c0/{c0}")),
        })
        .collect();
    Panel::from_triples(
        "A2a: EUG constant c₀ (Gaussian 4D, ε=0.1)",
        "c₀",
        "MRE (%)",
        &sweep(cells),
    )
}

/// A2b: DAF-Homogeneity's q sweep on the New York histogram.
fn q_panel(cfg: &HarnessConfig) -> Panel {
    let ds = city_2d(cfg, dpod_data::City::NewYork);
    let ctx = TruthContext::new(
        &ds.matrix,
        QueryWorkload::Random,
        cfg.num_queries(),
        cfg.sub_seed("ablation/q/queries"),
    );
    let qs = [0.1, 0.2, 0.3, 0.4, 0.6];
    let mechs: Vec<(f64, DynMechanism)> = qs
        .iter()
        .map(|&q| {
            (
                q,
                Box::new(DafHomogeneity {
                    q,
                    ..DafHomogeneity::default()
                }) as DynMechanism,
            )
        })
        .collect();
    let cells: Vec<Cell<'_>> = mechs
        .iter()
        .map(|(q, mech)| Cell {
            series: "DAF-Homogeneity".into(),
            x: *q,
            input: &ds.matrix,
            ctx: &ctx,
            mechanism: mech,
            epsilon: EPSILON,
            seed: cfg.sub_seed(&format!("ablation/q/{q}")),
        })
        .collect();
    Panel::from_triples(
        "A2b: DAF-Homogeneity partition budget ratio q (New York 2D, ε=0.1)",
        "q",
        "MRE (%)",
        &sweep(cells),
    )
}

/// A4: effect of the non-negativity post-processing step.
fn postprocess_panel(cfg: &HarnessConfig) -> Panel {
    let ds = city_2d(cfg, dpod_data::City::Denver);
    let ctx = TruthContext::new(
        &ds.matrix,
        QueryWorkload::Random,
        cfg.num_queries(),
        cfg.sub_seed("ablation/nn/queries"),
    );
    let base: Vec<DynMechanism> = vec![
        Box::new(Identity),
        Box::new(dpod_core::grid::Ebp::default()),
        Box::new(DafEntropy::default()),
    ];
    let clamped: Vec<DynMechanism> = vec![
        Box::new(NonNegative(Identity)),
        Box::new(NonNegative(dpod_core::grid::Ebp::default())),
        Box::new(NonNegative(DafEntropy::default())),
    ];
    let mut cells = Vec::new();
    for (x, group) in [(0.0, &base), (1.0, &clamped)] {
        for mech in group {
            cells.push(Cell {
                series: mech.name().to_string(),
                x,
                input: &ds.matrix,
                ctx: &ctx,
                mechanism: mech,
                epsilon: EPSILON,
                seed: cfg.sub_seed(&format!("ablation/nn/{}/{x}", mech.name())),
            });
        }
    }
    Panel::from_triples(
        "A4: non-negativity post-processing (0 = raw, 1 = clamped; Denver 2D, ε=0.1)",
        "clamped",
        "MRE (%)",
        &sweep(cells),
    )
}

/// Wrapper mechanism applying the non-negativity post-processing.
struct NonNegative<M: Mechanism>(M);

impl<M: Mechanism> Mechanism for NonNegative<M> {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn sanitize(
        &self,
        input: &DenseMatrix<u64>,
        epsilon: Epsilon,
        rng: &mut dyn RngCore,
    ) -> Result<SanitizedMatrix, MechanismError> {
        Ok(self.0.sanitize(input, epsilon, rng)?.non_negative())
    }
}

/// A5: Laplace vs two-sided geometric noise on IDENTITY.
fn noise_kind_panel(cfg: &HarnessConfig) -> Panel {
    let ds = city_2d(cfg, dpod_data::City::Detroit);
    let ctx = TruthContext::new(
        &ds.matrix,
        QueryWorkload::Random,
        cfg.num_queries(),
        cfg.sub_seed("ablation/noise/queries"),
    );
    let mechs: Vec<DynMechanism> = vec![Box::new(Identity), Box::new(GeometricIdentity)];
    let mut cells = Vec::new();
    for (x, eps) in [(0.1, 0.1), (0.3, 0.3), (0.5, 0.5)] {
        for mech in &mechs {
            cells.push(Cell {
                series: mech.name().to_string(),
                x,
                input: &ds.matrix,
                ctx: &ctx,
                mechanism: mech,
                epsilon: eps,
                seed: cfg.sub_seed(&format!("ablation/noise/{}/{x}", mech.name())),
            });
        }
    }
    Panel::from_triples(
        "A5: Laplace vs geometric noise (IDENTITY, Detroit 2D)",
        "ε_tot",
        "MRE (%)",
        &sweep(cells),
    )
}

/// A6: constrained-inference (tree consistency) post-processing for
/// DAF-Entropy — recycles the internal nodes' noisy counts at zero extra
/// budget (extension; see `dpod_core::daf::consistency`).
fn consistency_panel(cfg: &HarnessConfig) -> Panel {
    let datasets = [
        ("NY 2D", city_2d(cfg, dpod_data::City::NewYork)),
        ("Gaussian 4D", gaussian(cfg, 4, 0.1)),
    ];
    let mechs: Vec<(f64, DynMechanism)> = vec![
        (0.0, Box::new(DafEntropy::default())),
        (1.0, Box::new(DafEntropy::with_consistency())),
    ];
    let mut triples = Vec::new();
    for (name, ds) in &datasets {
        let ctx = TruthContext::new(
            &ds.matrix,
            QueryWorkload::Random,
            cfg.num_queries(),
            cfg.sub_seed(&format!("ablation/consistency/queries/{name}")),
        );
        let cells: Vec<Cell<'_>> = mechs
            .iter()
            .map(|(x, mech)| Cell {
                series: format!("DAF-Entropy ({name})"),
                x: *x,
                input: &ds.matrix,
                ctx: &ctx,
                mechanism: mech,
                epsilon: EPSILON,
                seed: cfg.sub_seed(&format!("ablation/consistency/{name}/{x}")),
            })
            .collect();
        triples.extend(sweep(cells));
    }
    Panel::from_triples(
        "A6: tree-consistency post-processing (0 = raw, 1 = consistent; ε=0.1)",
        "consistent",
        "MRE (%)",
        &triples,
    )
}

/// IDENTITY with two-sided geometric noise instead of Laplace (the paper's
/// future-work direction, exercised here as an ablation).
struct GeometricIdentity;

impl Mechanism for GeometricIdentity {
    fn name(&self) -> &'static str {
        "IDENTITY-geometric"
    }

    fn sanitize(
        &self,
        input: &DenseMatrix<u64>,
        epsilon: Epsilon,
        rng: &mut dyn RngCore,
    ) -> Result<SanitizedMatrix, MechanismError> {
        let geo = GeometricMechanism::counting();
        let mut out = DenseMatrix::<f64>::zeros(input.shape().clone());
        for (i, &v) in input.as_slice().iter().enumerate() {
            out.set_flat(i, geo.randomize(v as i64, epsilon, rng) as f64);
        }
        Ok(SanitizedMatrix::from_entries(
            self.name(),
            epsilon.value(),
            out,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_ablation_structure() {
        let cfg = HarnessConfig::at_scale(crate::Scale::Tiny);
        let e = ablation(&cfg);
        assert_eq!(e.panels.len(), 6);
        for p in &e.panels {
            assert!(!p.series.is_empty(), "panel {} has no series", p.title);
            for s in &p.series {
                assert!(s.points.iter().all(|&(_, y)| y.is_finite()));
            }
        }
    }
}
