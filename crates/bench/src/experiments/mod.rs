//! One module per reproduced table/figure. Each returns an
//! [`Experiment`] (or a rendered string for the visual Fig. 3) that the
//! `reproduce` binary prints and persists.
//!
//! [`Experiment`]: crate::report::Experiment

pub mod ablation;
pub mod extensions;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig8;
pub mod table3;

pub use ablation::ablation;
pub use extensions::extensions;
pub use fig3::fig3;
pub use fig4::fig4;
pub use fig5::fig5;
pub use fig6::{fig6, fig7_from};
pub use fig8::fig8;
pub use table3::table3;

use crate::report::Experiment;
use crate::HarnessConfig;

/// The privacy budgets of the paper's sweeps (§6.1).
pub const PAPER_EPSILONS: [f64; 3] = [0.1, 0.3, 0.5];

/// Dimensionalities of the synthetic sweeps (shared by Figs. 4 and 5).
pub fn fig4_dims() -> [usize; 3] {
    fig4::DIMS
}

/// Runs Fig. 7 (Fig. 6 without the order-of-magnitude baselines): computes
/// Fig. 6 fresh, then filters. The binary reuses a cached Fig. 6 JSON when
/// available.
pub fn fig7(cfg: &HarnessConfig) -> Experiment {
    fig7_from(&fig6(cfg))
}
