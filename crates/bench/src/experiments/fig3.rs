//! Figure 3: the intuition picture — how non-adaptive grids, DAF-Entropy
//! and DAF-Homogeneity partition a city's population heatmap.
//!
//! The paper renders Los Angeles (Veraset sample); we render the New York
//! archetype of the city model (the densest preset, closest in structure).
//! Output is ASCII: density shading with partition boundaries overlaid.

use crate::HarnessConfig;
use dpod_core::{
    daf::{DafEntropy, DafHomogeneity},
    grid::Eug,
    Mechanism, PartitionSummary, SanitizedMatrix,
};
use dpod_data::City;
use dpod_dp::Epsilon;
use dpod_fmatrix::DenseMatrix;

/// Canvas size of the ASCII rendering (characters).
const CANVAS_W: usize = 96;
const CANVAS_H: usize = 40;

/// Display budget. The figure is illustrative: a strict budget keeps the
/// privately-chosen granularities coarse enough that individual partition
/// borders are visible at terminal resolution (the paper's rendering has
/// the same property — tens of lines per dimension, not hundreds).
const DISPLAY_EPSILON: f64 = 0.05;

/// Runs the three mechanisms on a 2-D city histogram and renders their
/// partition layouts side by side (stacked vertically).
pub fn fig3(cfg: &HarnessConfig) -> String {
    let city = City::NewYork;
    let label = "fig3/data";
    let mut rng = dpod_dp::seeded_rng(cfg.sub_seed(label));
    let grid = cfg.city_grid().min(128); // display resolution is the limit
    let points = cfg.num_points().min(120_000);
    let matrix = city.model().population_matrix(grid, points, &mut rng);
    let eps = Epsilon::new(DISPLAY_EPSILON).expect("valid epsilon");

    let mut out = String::new();
    out.push_str(&format!(
        "Fig. 3 — partition layouts on {} ({} points, {}x{} grid, ε={DISPLAY_EPSILON})\n\n",
        city.name(),
        points,
        grid,
        grid
    ));
    let mechs: Vec<Box<dyn Mechanism>> = vec![
        Box::new(Eug::default()),
        Box::new(DafEntropy::default()),
        Box::new(DafHomogeneity::default()),
    ];
    for mech in mechs {
        let mut rng = dpod_dp::seeded_rng(cfg.sub_seed(&format!("fig3/{}", mech.name())));
        let sanitized = mech
            .sanitize(&matrix, eps, &mut rng)
            .expect("fig3 sanitization");
        out.push_str(&format!(
            "--- {} ({} partitions) ---\n",
            mech.name(),
            sanitized.num_partitions()
        ));
        out.push_str(&render(&matrix, &sanitized));
        out.push('\n');
    }
    out
}

/// Renders density shading with partition borders.
fn render(matrix: &DenseMatrix<u64>, sanitized: &SanitizedMatrix) -> String {
    let (h, w) = (matrix.shape().dim(0), matrix.shape().dim(1));
    let max = matrix.max_f64().unwrap_or(1.0).max(1.0);
    let shades = [' ', '.', ':', '+', '*', '#', '@'];

    // Downsample the density to the canvas.
    let mut canvas = vec![vec![' '; CANVAS_W]; CANVAS_H];
    for (r, row) in canvas.iter_mut().enumerate() {
        for (c, slot) in row.iter_mut().enumerate() {
            // Cell block covered by this character.
            let x0 = r * h / CANVAS_H;
            let x1 = ((r + 1) * h / CANVAS_H).max(x0 + 1);
            let y0 = c * w / CANVAS_W;
            let y1 = ((c + 1) * w / CANVAS_W).max(y0 + 1);
            let mut sum = 0.0;
            for x in x0..x1 {
                for y in y0..y1 {
                    sum += matrix.get(&[x, y]).expect("in bounds") as f64;
                }
            }
            let mean = sum / ((x1 - x0) * (y1 - y0)) as f64;
            // Log shading: city densities span orders of magnitude.
            let t = ((1.0 + mean).ln() / (1.0 + max).ln()).clamp(0.0, 1.0);
            *slot = shades[(t * (shades.len() - 1) as f64).round() as usize];
        }
    }

    // Overlay partition borders.
    if let PartitionSummary::Boxes { partitioning, .. } = sanitized.summary() {
        for b in partitioning.boxes() {
            let r0 = b.lo()[0] * CANVAS_H / h;
            let r1 = ((b.hi()[0] * CANVAS_H).div_ceil(h)).min(CANVAS_H) - 1;
            let c0 = b.lo()[1] * CANVAS_W / w;
            let c1 = ((b.hi()[1] * CANVAS_W).div_ceil(w)).min(CANVAS_W) - 1;
            for row in [r0, r1] {
                canvas[row][c0..=c1].fill('-');
            }
            for row in canvas.iter_mut().take(r1 + 1).skip(r0) {
                row[c0] = '|';
                row[c1] = '|';
            }
        }
    }

    let mut s = String::with_capacity(CANVAS_H * (CANVAS_W + 1));
    for row in &canvas {
        s.extend(row.iter());
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_renders_three_layouts() {
        let cfg = HarnessConfig::at_scale(crate::Scale::Tiny);
        let art = fig3(&cfg);
        assert!(art.contains("EUG"));
        assert!(art.contains("DAF-Entropy"));
        assert!(art.contains("DAF-Homogeneity"));
        // Borders made it onto the canvas.
        assert!(art.contains('|') && art.contains('-'));
        // Three canvases of the expected height.
        let lines = art.lines().filter(|l| l.len() == CANVAS_W).count();
        assert!(lines >= CANVAS_H * 3);
    }
}
