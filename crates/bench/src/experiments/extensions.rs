//! Extension experiments beyond the paper's evaluation:
//!
//! * **E1** — the Privelet and QuadTree related-work baselines against the
//!   paper's suite on 2-D city data;
//! * **E2** — OD matrices **with one intermediate stop** (6-D), the
//!   scenario the paper's title promises but evaluates only on synthetic
//!   data; we run it on city trajectories.

use crate::datasets::{city_2d, city_od};
use crate::experiments::{fig8::fig8_mechanisms, PAPER_EPSILONS};
use crate::report::{Experiment, Panel};
use crate::runner::{sweep, Cell, TruthContext};
use crate::HarnessConfig;
use dpod_core::{all_mechanisms, DynMechanism};
use dpod_data::City;
use dpod_query::workload::QueryWorkload;

/// Runs both extension experiments.
pub fn extensions(cfg: &HarnessConfig) -> Experiment {
    let mut panels = Vec::new();
    panels.push(related_work_panel(cfg));
    panels.extend(od6d_panels(cfg));
    Experiment {
        id: "extensions".into(),
        description: "Extension baselines (Privelet/QuadTree) and 6D OD-with-stops on city data"
            .into(),
        panels,
    }
}

/// E1: every mechanism in the crate on the New York histogram.
fn related_work_panel(cfg: &HarnessConfig) -> Panel {
    let ds = city_2d(cfg, City::NewYork);
    let ctx = TruthContext::new(
        &ds.matrix,
        QueryWorkload::Random,
        cfg.num_queries(),
        cfg.sub_seed("ext/relwork/queries"),
    );
    let mechanisms: Vec<DynMechanism> = all_mechanisms();
    let mut cells = Vec::new();
    for &eps in &PAPER_EPSILONS {
        for mech in &mechanisms {
            cells.push(Cell {
                series: mech.name().to_string(),
                x: eps,
                input: &ds.matrix,
                ctx: &ctx,
                mechanism: mech,
                epsilon: eps,
                seed: cfg.sub_seed(&format!("ext/relwork/e{eps}/{}", mech.name())),
            });
        }
    }
    Panel::from_triples(
        "E1: all mechanisms incl. Privelet/QuadTree (New York 2D)",
        "ε_tot",
        "MRE (%)",
        &sweep(cells),
    )
}

/// E2: 6-D OD matrices (origin, one stop, destination) per city.
fn od6d_panels(cfg: &HarnessConfig) -> Vec<Panel> {
    let mechanisms = fig8_mechanisms();
    let mut panels = Vec::new();
    for city in City::ALL {
        let ds = city_od(cfg, city, 1);
        let ctx = TruthContext::new(
            &ds.matrix,
            QueryWorkload::Random,
            cfg.num_queries(),
            cfg.sub_seed(&format!("ext/od6d/queries/{}", city.name())),
        );
        let mut cells = Vec::new();
        for &eps in &PAPER_EPSILONS {
            for mech in &mechanisms {
                cells.push(Cell {
                    series: mech.name().to_string(),
                    x: eps,
                    input: &ds.matrix,
                    ctx: &ctx,
                    mechanism: mech,
                    epsilon: eps,
                    seed: cfg.sub_seed(&format!("ext/od6d/{}/e{eps}/{}", city.name(), mech.name())),
                });
            }
        }
        panels.push(Panel::from_triples(
            &format!(
                "E2: {} OD 6D (one intermediate stop), random queries",
                city.name()
            ),
            "ε_tot",
            "MRE (%)",
            &sweep(cells),
        ));
    }
    panels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_extensions_structure() {
        let cfg = HarnessConfig::at_scale(crate::Scale::Tiny);
        let e = extensions(&cfg);
        assert_eq!(e.panels.len(), 4);
        assert_eq!(e.panels[0].series.len(), 10, "paper suite + 4 extensions");
        for p in &e.panels[1..] {
            assert_eq!(p.series.len(), 4);
        }
    }
}
