//! Figure 5: synthetic Zipf data, random shape/size queries, ε = 0.1.
//! 3 panels — d ∈ {2, 4, 6}; MRE vs skew parameter a.

use crate::datasets::{zipf, Dataset};
use crate::report::{Experiment, Panel};
use crate::runner::{sweep, Cell, TruthContext};
use crate::HarnessConfig;
use dpod_core::paper_suite;
use dpod_query::workload::QueryWorkload;

/// Zipf skew exponents swept on the x axis.
pub const SKEWS: [f64; 5] = [1.2, 1.6, 2.0, 2.4, 2.8];

/// The figure's fixed privacy budget.
pub const EPSILON: f64 = 0.1;

/// Runs the experiment.
pub fn fig5(cfg: &HarnessConfig) -> Experiment {
    let mechanisms = paper_suite();
    let mut panels = Vec::new();
    for &d in &crate::experiments::fig4_dims() {
        let datasets: Vec<Dataset> = SKEWS.iter().map(|&a| zipf(cfg, d, a)).collect();
        let contexts: Vec<TruthContext> = datasets
            .iter()
            .enumerate()
            .map(|(i, ds)| {
                TruthContext::new(
                    &ds.matrix,
                    QueryWorkload::Random,
                    cfg.num_queries(),
                    cfg.sub_seed(&format!("fig5/queries/d{d}/{i}")),
                )
            })
            .collect();
        let mut cells = Vec::new();
        for ((ds, ctx), &a) in datasets.iter().zip(&contexts).zip(&SKEWS) {
            for mech in &mechanisms {
                cells.push(Cell {
                    series: mech.name().to_string(),
                    x: a,
                    input: &ds.matrix,
                    ctx,
                    mechanism: mech,
                    epsilon: EPSILON,
                    seed: cfg.sub_seed(&format!("fig5/run/d{d}/a{a}/{}", mech.name())),
                });
            }
        }
        let triples = sweep(cells);
        panels.push(Panel::from_triples(
            &format!("{d}D, ε_tot = {EPSILON}"),
            "skew a",
            "MRE (%)",
            &triples,
        ));
    }
    Experiment {
        id: "fig5".into(),
        description: "Zipf synthetic data, random queries, ε=0.1 (paper Fig. 5)".into(),
        panels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_fig5_structure() {
        let cfg = HarnessConfig::at_scale(crate::Scale::Tiny);
        let e = fig5(&cfg);
        assert_eq!(e.panels.len(), 3);
        for p in &e.panels {
            assert_eq!(p.series.len(), 6);
            for s in &p.series {
                assert_eq!(s.points.len(), SKEWS.len());
            }
        }
    }
}
