//! The experiment runner: one sanitize+evaluate cell, plus the parallel
//! sweep helper the figure experiments are built from.

use dpod_core::{DynMechanism, Mechanism};
use dpod_dp::Epsilon;
use dpod_fmatrix::{AxisBox, DenseMatrix, PrefixSum};
use dpod_query::{eval::evaluate_with_prefix, metrics::MreOptions, workload::QueryWorkload};
use rayon::prelude::*;

/// Precomputed ground truth for one (input, workload) pair, shared across
/// every mechanism and ε of a sweep.
pub struct TruthContext {
    prefix: PrefixSum<i128>,
    total: f64,
    queries: Vec<AxisBox>,
}

impl TruthContext {
    /// Builds the truth table and draws the query workload.
    pub fn new(
        input: &DenseMatrix<u64>,
        workload: QueryWorkload,
        num_queries: usize,
        seed: u64,
    ) -> Self {
        let mut rng = dpod_dp::seeded_rng(seed);
        TruthContext {
            prefix: PrefixSum::from_counts(input),
            total: input.total(),
            queries: workload.draw_many(input.shape(), num_queries, &mut rng),
        }
    }

    /// Number of queries in the workload.
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }
}

/// Runs one mechanism at one budget and returns the mean relative error
/// (percent) over the context's workload.
pub fn run_cell(
    input: &DenseMatrix<u64>,
    ctx: &TruthContext,
    mechanism: &dyn Mechanism,
    epsilon: f64,
    seed: u64,
) -> f64 {
    let mut rng = dpod_dp::seeded_rng(seed);
    let sanitized = mechanism
        .sanitize(
            input,
            Epsilon::new(epsilon).expect("valid epsilon"),
            &mut rng,
        )
        .unwrap_or_else(|e| panic!("{} failed at ε={epsilon}: {e}", mechanism.name()));
    evaluate_with_prefix(
        &ctx.prefix,
        ctx.total,
        &sanitized,
        &ctx.queries,
        MreOptions::default(),
    )
    .stats
    .mean
}

/// One curve point request for [`sweep`].
pub struct Cell<'a> {
    /// Series label (mechanism name by convention).
    pub series: String,
    /// X-axis value of this point.
    pub x: f64,
    /// The input matrix.
    pub input: &'a DenseMatrix<u64>,
    /// Shared ground truth for the input.
    pub ctx: &'a TruthContext,
    /// The mechanism to run.
    pub mechanism: &'a DynMechanism,
    /// Total privacy budget.
    pub epsilon: f64,
    /// Seed for this cell.
    pub seed: u64,
}

/// Evaluates many cells in parallel, returning `(series, x, mre)` triples
/// in input order.
pub fn sweep(cells: Vec<Cell<'_>>) -> Vec<(String, f64, f64)> {
    cells
        .into_par_iter()
        .map(|c| {
            let mre = run_cell(c.input, c.ctx, c.mechanism.as_ref(), c.epsilon, c.seed);
            (c.series, c.x, mre)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpod_core::baselines::{Identity, Uniform};
    use dpod_fmatrix::Shape;

    fn skewed_input() -> DenseMatrix<u64> {
        let s = Shape::new(vec![24, 24]).unwrap();
        let mut m = DenseMatrix::<u64>::zeros(s);
        for x in 0..4 {
            for y in 0..4 {
                m.set(&[x, y], 600).unwrap();
            }
        }
        m
    }

    #[test]
    fn run_cell_produces_finite_mre() {
        let input = skewed_input();
        let ctx = TruthContext::new(&input, QueryWorkload::Random, 100, 1);
        let mre = run_cell(&input, &ctx, &Identity, 0.5, 2);
        assert!(mre.is_finite() && mre >= 0.0);
    }

    #[test]
    fn identity_beats_uniform_on_skewed_data_at_high_eps() {
        // With generous budget, per-entry noise is tiny while the uniform
        // baseline still suffers full uniformity error.
        let input = skewed_input();
        let ctx = TruthContext::new(&input, QueryWorkload::Random, 200, 3);
        let id = run_cell(&input, &ctx, &Identity, 20.0, 4);
        let un = run_cell(&input, &ctx, &Uniform, 20.0, 4);
        assert!(id < un, "identity {id} should beat uniform {un}");
    }

    #[test]
    fn sweep_preserves_labels_and_order() {
        let input = skewed_input();
        let ctx = TruthContext::new(&input, QueryWorkload::Random, 50, 5);
        let mechs: Vec<dpod_core::DynMechanism> = vec![Box::new(Identity), Box::new(Uniform)];
        let cells: Vec<Cell<'_>> = mechs
            .iter()
            .enumerate()
            .map(|(i, m)| Cell {
                series: m.name().to_string(),
                x: i as f64,
                input: &input,
                ctx: &ctx,
                mechanism: m,
                epsilon: 1.0,
                seed: 6,
            })
            .collect();
        let out = sweep(cells);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, "IDENTITY");
        assert_eq!(out[1].0, "UNIFORM");
        assert_eq!(out[0].1, 0.0);
    }
}
