//! Text-table rendering and JSON persistence for experiment results.

use serde::{Deserialize, Serialize};
use std::path::Path;

/// One curve of a panel: a labelled series of (x, y) points.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Series {
    /// Legend label (mechanism name).
    pub label: String,
    /// Points in x order.
    pub points: Vec<(f64, f64)>,
}

/// One sub-plot of a figure (e.g. "2D, ε_tot = 0.1" in Fig. 4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Panel {
    /// Panel title, mirroring the paper's caption.
    pub title: String,
    /// X-axis meaning ("variance", "ε", "skew a", …).
    pub x_label: String,
    /// Y-axis meaning (usually "MRE (%)").
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

/// A full experiment: a set of panels reproducing one paper table/figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Experiment {
    /// Identifier ("fig4", "table3", …).
    pub id: String,
    /// What the paper's counterpart shows.
    pub description: String,
    /// The panels.
    pub panels: Vec<Panel>,
}

impl Panel {
    /// Builds a panel from `(series, x, y)` triples, grouping by series
    /// label in first-seen order and sorting each series by x.
    pub fn from_triples(
        title: &str,
        x_label: &str,
        y_label: &str,
        triples: &[(String, f64, f64)],
    ) -> Self {
        let mut series: Vec<Series> = Vec::new();
        for (label, x, y) in triples {
            match series.iter_mut().find(|s| &s.label == label) {
                Some(s) => s.points.push((*x, *y)),
                None => series.push(Series {
                    label: label.clone(),
                    points: vec![(*x, *y)],
                }),
            }
        }
        for s in &mut series {
            s.points
                .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite x"));
        }
        Panel {
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            series,
        }
    }

    /// Renders the panel as an aligned text table (one row per series,
    /// one column per x value).
    pub fn render(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
        xs.dedup();

        let label_width = self
            .series
            .iter()
            .map(|s| s.label.len())
            .max()
            .unwrap_or(8)
            .max(self.y_label.len())
            + 2;
        let col = 12;

        let mut out = String::new();
        out.push_str(&format!("-- {} --\n", self.title));
        out.push_str(&format!(
            "{:<label_width$}",
            format!("{} \\ {}", self.y_label, self.x_label)
        ));
        for x in &xs {
            out.push_str(&format!("{:>col$}", trim_float(*x)));
        }
        out.push('\n');
        for s in &self.series {
            out.push_str(&format!("{:<label_width$}", s.label));
            for x in &xs {
                match s.points.iter().find(|p| p.0 == *x) {
                    Some(&(_, y)) => out.push_str(&format!("{:>col$}", format_value(y))),
                    None => out.push_str(&format!("{:>col$}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }
}

impl Experiment {
    /// Prints every panel to stdout.
    pub fn print(&self) {
        println!("==== {} — {} ====", self.id, self.description);
        for p in &self.panels {
            println!("{}", p.render());
        }
    }

    /// Writes the experiment as pretty JSON to `dir/<id>.json`.
    ///
    /// # Errors
    /// IO/serialization errors, as a displayable string.
    pub fn save_json(&self, dir: &Path) -> Result<std::path::PathBuf, String> {
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        let path = dir.join(format!("{}.json", self.id));
        let json = serde_json::to_string_pretty(self).map_err(|e| e.to_string())?;
        std::fs::write(&path, json).map_err(|e| e.to_string())?;
        Ok(path)
    }
}

/// Compact x-value rendering: integers plain, reals to 4 decimals with
/// trailing zeros trimmed (keeps irrational sweep values like 10/√2 from
/// blowing out the column width).
fn trim_float(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e12 {
        format!("{}", x as i64)
    } else {
        let s = format!("{x:.4}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

/// Compact y-value rendering: fixed precision, scientific for extremes.
fn format_value(y: f64) -> String {
    if !y.is_finite() {
        return format!("{y}");
    }
    let a = y.abs();
    if a != 0.0 && !(1e-2..1e5).contains(&a) {
        format!("{y:.2e}")
    } else {
        format!("{y:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triples() -> Vec<(String, f64, f64)> {
        vec![
            ("EBP".into(), 0.3, 2.0),
            ("EBP".into(), 0.1, 5.0),
            ("IDENTITY".into(), 0.1, 50.0),
            ("IDENTITY".into(), 0.3, 20.0),
        ]
    }

    #[test]
    fn panel_groups_and_sorts() {
        let p = Panel::from_triples("t", "ε", "MRE (%)", &triples());
        assert_eq!(p.series.len(), 2);
        assert_eq!(p.series[0].label, "EBP");
        assert_eq!(p.series[0].points, vec![(0.1, 5.0), (0.3, 2.0)]);
    }

    #[test]
    fn render_contains_all_labels_and_values() {
        let p = Panel::from_triples("demo", "ε", "MRE (%)", &triples());
        let r = p.render();
        assert!(r.contains("EBP"));
        assert!(r.contains("IDENTITY"));
        assert!(r.contains("5.00"));
        assert!(r.contains("50.00"));
        assert!(r.contains("0.1"));
    }

    #[test]
    fn missing_points_render_as_dash() {
        let t = vec![
            ("A".into(), 1.0, 2.0),
            ("B".into(), 1.0, 3.0),
            ("B".into(), 2.0, 4.0),
        ];
        let p = Panel::from_triples("gap", "x", "y", &t);
        let r = p.render();
        assert!(r.contains('-'));
    }

    #[test]
    fn json_round_trip() {
        let e = Experiment {
            id: "figX".into(),
            description: "demo".into(),
            panels: vec![Panel::from_triples("p", "x", "y", &triples())],
        };
        let dir = std::env::temp_dir().join("dpod_bench_test");
        let path = e.save_json(&dir).unwrap();
        let loaded: Experiment =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(loaded.id, "figX");
        assert_eq!(loaded.panels[0].series.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn value_formatting() {
        assert_eq!(format_value(3.456_78), "3.46");
        assert_eq!(format_value(123456.0), "1.23e5");
        assert_eq!(format_value(0.001), "1.00e-3");
        assert_eq!(trim_float(2.0), "2");
        assert_eq!(trim_float(0.1), "0.1");
        assert_eq!(trim_float(10.0 / std::f64::consts::SQRT_2), "7.0711");
    }
}
