//! Dataset builders used by the experiments (§6.1 of the paper).

use crate::HarnessConfig;
use dpod_data::{City, GaussianConfig, OdMatrixBuilder, TrajectoryConfig, ZipfConfig};
use dpod_fmatrix::{DenseMatrix, Shape};

/// A named input matrix for one experiment cell.
pub struct Dataset {
    /// Display name ("Gaussian d=4 σ/w=0.10", "New York 2D", …).
    pub name: String,
    /// The raw count matrix.
    pub matrix: DenseMatrix<u64>,
}

/// Synthetic-domain side for `d` dimensions: the paper sets the width of
/// each dimension to `d√N`.
pub fn synthetic_side(d: usize, n: usize) -> usize {
    (n as f64).powf(1.0 / d as f64).round().max(2.0) as usize
}

/// Gaussian matrix with cluster spread `sigma_frac · side` (§6.1; the
/// paper's `var` knob expressed relative to the domain so the same
/// fractions are meaningful at every dimensionality).
pub fn gaussian(cfg: &HarnessConfig, d: usize, sigma_frac: f64) -> Dataset {
    let n = cfg.num_points();
    let side = synthetic_side(d, n);
    let sigma = sigma_frac * side as f64;
    let gen = GaussianConfig {
        shape: Shape::cube(d, side).expect("valid cube"),
        num_points: n,
        var: sigma * sigma,
    };
    let label = format!("gaussian/d{d}/sf{sigma_frac}");
    let mut rng = dpod_dp::seeded_rng(cfg.sub_seed(&label));
    Dataset {
        name: format!("Gaussian d={d} σ/w={sigma_frac:.2}"),
        matrix: gen.generate(&mut rng),
    }
}

/// Zipf matrix with skew exponent `a` (§6.1).
pub fn zipf(cfg: &HarnessConfig, d: usize, a: f64) -> Dataset {
    let n = cfg.num_points();
    let side = synthetic_side(d, n);
    let gen = ZipfConfig {
        shape: Shape::cube(d, side).expect("valid cube"),
        num_points: n,
        a,
    };
    let label = format!("zipf/d{d}/a{a}");
    let mut rng = dpod_dp::seeded_rng(cfg.sub_seed(&label));
    Dataset {
        name: format!("Zipf d={d} a={a:.1}"),
        matrix: gen.generate(&mut rng),
    }
}

/// 2-D city population histogram (the Veraset substitute; paper: 1000²,
/// 1 M points).
pub fn city_2d(cfg: &HarnessConfig, city: City) -> Dataset {
    let label = format!("city2d/{}", city.name());
    let mut rng = dpod_dp::seeded_rng(cfg.sub_seed(&label));
    let matrix = city
        .model()
        .population_matrix(cfg.city_grid(), cfg.num_points(), &mut rng);
    Dataset {
        name: format!("{} 2D", city.name()),
        matrix,
    }
}

/// OD matrix with `stops` intermediate stops (paper: 300 k trajectories;
/// 4-D for origin/destination, 6-D with one stop). Granularity per
/// DESIGN.md §3.12: 32/axis for 4-D, 10/axis for 6-D.
pub fn city_od(cfg: &HarnessConfig, city: City, stops: usize) -> Dataset {
    let cells = cfg.od_cells(stops);
    let label = format!("cityod/{}/s{stops}", city.name());
    let mut rng = dpod_dp::seeded_rng(cfg.sub_seed(&label));
    let trips = TrajectoryConfig::with_stops(stops).generate(
        &city.model(),
        cfg.num_trajectories(),
        &mut rng,
    );
    let builder = OdMatrixBuilder::new(cells);
    let matrix = builder
        .build_dense(&trips, stops)
        .expect("OD domain within dense guard");
    Dataset {
        name: format!("{} OD {}D", city.name(), 2 * (stops + 2)),
        matrix,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> HarnessConfig {
        HarnessConfig::at_scale(crate::Scale::Tiny)
    }

    #[test]
    fn synthetic_side_matches_paper_rule() {
        assert_eq!(synthetic_side(2, 1_000_000), 1_000);
        assert_eq!(synthetic_side(4, 1_000_000), 32);
        assert_eq!(synthetic_side(6, 1_000_000), 10);
    }

    #[test]
    fn gaussian_dataset_has_right_mass_and_shape() {
        let cfg = quick();
        let ds = gaussian(&cfg, 4, 0.1);
        assert_eq!(ds.matrix.ndim(), 4);
        assert_eq!(ds.matrix.total_u64() as usize, cfg.num_points());
    }

    #[test]
    fn od_dataset_dimensions() {
        let cfg = quick();
        let ds = city_od(&cfg, City::Denver, 0);
        assert_eq!(ds.matrix.ndim(), 4);
        assert_eq!(ds.matrix.total_u64() as usize, cfg.num_trajectories());
    }

    #[test]
    fn sub_seeds_differ_by_label() {
        let cfg = quick();
        assert_ne!(cfg.sub_seed("a"), cfg.sub_seed("b"));
        assert_eq!(cfg.sub_seed("a"), cfg.sub_seed("a"));
    }
}
