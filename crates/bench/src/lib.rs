//! # dpod-bench
//!
//! The reproduction harness for every table and figure in the paper's
//! evaluation (§6). Two entry points:
//!
//! * the **`reproduce` binary** — regenerates the accuracy figures
//!   (Fig. 3–8), the runtime table (Table 3, one-shot wall-clock) and the
//!   ablations, printing each panel as an aligned text table and writing
//!   `results/<id>.json`;
//! * the **Criterion benches** (`benches/`) — statistically sound runtime
//!   measurements (Table 3) and substrate micro-benchmarks.
//!
//! DESIGN.md §4 maps every experiment id to its paper counterpart;
//! EXPERIMENTS.md records paper-vs-measured outcomes.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod datasets;
pub mod experiments;
pub mod report;
pub mod runner;

/// Experiment sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper scale: 1 M points, 300 k trajectories, 1000 queries, 1000²
    /// city grids.
    Full,
    /// Laptop smoke runs: same sweeps, reduced data.
    Quick,
    /// Structure tests: minutes become milliseconds.
    Tiny,
}

/// Global harness configuration shared by all experiments.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Experiment sizing.
    pub scale: Scale,
    /// Base seed; every (experiment, dataset, mechanism, ε, trial) derives
    /// its own deterministic stream from it.
    pub seed: u64,
    /// Directory for JSON result dumps.
    pub out_dir: std::path::PathBuf,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            scale: Scale::Full,
            seed: 0xD90D,
            out_dir: std::path::PathBuf::from("results"),
        }
    }
}

impl HarnessConfig {
    /// A configuration at the given scale with default seed/output.
    pub fn at_scale(scale: Scale) -> Self {
        HarnessConfig {
            scale,
            ..HarnessConfig::default()
        }
    }

    /// Synthetic dataset size (paper: 1 million points).
    pub fn num_points(&self) -> usize {
        match self.scale {
            Scale::Full => 1_000_000,
            Scale::Quick => 150_000,
            Scale::Tiny => 4_000,
        }
    }

    /// Trajectory count for the OD experiments (paper: 300 000).
    pub fn num_trajectories(&self) -> usize {
        match self.scale {
            Scale::Full => 300_000,
            Scale::Quick => 60_000,
            Scale::Tiny => 3_000,
        }
    }

    /// Queries per data point (paper: 1000).
    pub fn num_queries(&self) -> usize {
        match self.scale {
            Scale::Full => 1_000,
            Scale::Quick => 300,
            Scale::Tiny => 60,
        }
    }

    /// 2-D city grid side (paper: 1000).
    pub fn city_grid(&self) -> usize {
        match self.scale {
            Scale::Full => 1_000,
            Scale::Quick => 256,
            Scale::Tiny => 64,
        }
    }

    /// OD grid cells per axis for `stops` intermediate stops
    /// (DESIGN.md §3.12).
    pub fn od_cells(&self, stops: usize) -> usize {
        let full = match stops {
            0 => 32,
            1 => 10,
            _ => 6,
        };
        match self.scale {
            Scale::Full => full,
            Scale::Quick => full.min(16),
            Scale::Tiny => full.min(6),
        }
    }

    /// Derives a deterministic sub-seed for a labelled unit of work.
    pub fn sub_seed(&self, label: &str) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.seed.hash(&mut h);
        label.hash(&mut h);
        h.finish()
    }
}
