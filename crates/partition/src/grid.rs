use crate::Partitioning;
use dpod_fmatrix::{AxisBox, Shape};
use serde::{Deserialize, Serialize};

/// An equi-width grid over a frequency-matrix domain.
///
/// Dimension `i` is divided into `cells[i]` intervals whose widths differ by
/// at most one cell (exact equi-width division is impossible when `m` does
/// not divide `F_i`; the paper's "divide each dimension by m" — Alg. 1
/// line 6 — is implemented as the balanced split used by all grid methods).
///
/// ```
/// use dpod_partition::UniformGrid;
/// use dpod_fmatrix::Shape;
/// let g = UniformGrid::new(&Shape::new(vec![10, 7]).unwrap(), &[3, 2]).unwrap();
/// assert_eq!(g.num_partitions(), 6);
/// let widths: Vec<usize> = g.boundaries(1).windows(2).map(|w| w[1] - w[0]).collect();
/// assert_eq!(widths, vec![4, 3]); // 7 cells into 2 near-equal intervals
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UniformGrid {
    shape: Shape,
    /// Interval boundaries per dimension: `boundaries[i]` has
    /// `cells[i] + 1` entries from `0` to `F_i`.
    boundaries: Vec<Vec<usize>>,
}

impl UniformGrid {
    /// Builds a grid with `cells[i]` intervals in dimension `i`.
    ///
    /// Cell counts are clamped to `[1, F_i]`, mirroring how the paper's
    /// granularity formulas are applied to finite domains.
    ///
    /// # Errors
    /// Returns `None`-like error via `Result` in the crate? — no: cell
    /// counts are clamped, so the only failure is a dimensionality mismatch.
    pub fn new(shape: &Shape, cells: &[usize]) -> Result<Self, String> {
        if cells.len() != shape.ndim() {
            return Err(format!(
                "grid cells have {} dims, domain has {}",
                cells.len(),
                shape.ndim()
            ));
        }
        let boundaries = cells
            .iter()
            .zip(shape.dims())
            .map(|(&m, &f)| split_boundaries(f, m.clamp(1, f)))
            .collect();
        Ok(UniformGrid {
            shape: shape.clone(),
            boundaries,
        })
    }

    /// Builds a grid with the same granularity `m` in every dimension
    /// (clamped per dimension).
    pub fn isotropic(shape: &Shape, m: usize) -> Self {
        let cells = vec![m; shape.ndim()];
        UniformGrid::new(shape, &cells).expect("dimensions match by construction")
    }

    /// The domain shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of intervals in dimension `dim`.
    #[inline]
    pub fn cells(&self, dim: usize) -> usize {
        self.boundaries[dim].len() - 1
    }

    /// Interval boundaries in dimension `dim` (length `cells(dim) + 1`).
    #[inline]
    pub fn boundaries(&self, dim: usize) -> &[usize] {
        &self.boundaries[dim]
    }

    /// Total number of grid partitions `∏ cells(i)`.
    pub fn num_partitions(&self) -> usize {
        self.boundaries.iter().map(|b| b.len() - 1).product()
    }

    /// Iterates the grid boxes in row-major order of their grid coordinates.
    pub fn iter_boxes(&self) -> impl Iterator<Item = AxisBox> + '_ {
        let d = self.shape.ndim();
        let mut idx = if self.num_partitions() == 0 {
            None
        } else {
            Some(vec![0usize; d])
        };
        std::iter::from_fn(move || {
            let current = idx.take()?;
            let lo: Vec<usize> = current
                .iter()
                .enumerate()
                .map(|(i, &c)| self.boundaries[i][c])
                .collect();
            let hi: Vec<usize> = current
                .iter()
                .enumerate()
                .map(|(i, &c)| self.boundaries[i][c + 1])
                .collect();
            let b = AxisBox::new(lo, hi).expect("grid boundaries are ordered");
            let mut succ = current;
            let mut dim = d;
            loop {
                if dim == 0 {
                    break;
                }
                dim -= 1;
                succ[dim] += 1;
                if succ[dim] < self.cells(dim) {
                    idx = Some(succ);
                    break;
                }
                succ[dim] = 0;
            }
            Some(b)
        })
    }

    /// Materializes the grid as a validated [`Partitioning`].
    pub fn to_partitioning(&self) -> Partitioning {
        Partitioning::from_grid(self)
    }

    /// Grid coordinates of the interval containing domain coordinate `c` in
    /// dimension `dim` (binary search over boundaries).
    pub fn locate(&self, dim: usize, c: usize) -> usize {
        debug_assert!(c < self.shape.dim(dim));
        let b = &self.boundaries[dim];
        match b.binary_search(&c) {
            Ok(i) => i.min(b.len() - 2),
            Err(i) => i - 1,
        }
    }
}

/// Splits `len` cells into `m` near-equal intervals, returning the `m + 1`
/// boundaries. The first `len mod m` intervals get the extra cell.
fn split_boundaries(len: usize, m: usize) -> Vec<usize> {
    debug_assert!(m >= 1 && m <= len);
    let base = len / m;
    let extra = len % m;
    let mut out = Vec::with_capacity(m + 1);
    let mut pos = 0;
    out.push(0);
    for i in 0..m {
        pos += base + usize::from(i < extra);
        out.push(pos);
    }
    debug_assert_eq!(*out.last().unwrap(), len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(dims: &[usize]) -> Shape {
        Shape::new(dims.to_vec()).unwrap()
    }

    #[test]
    fn split_boundaries_balanced() {
        assert_eq!(split_boundaries(10, 3), vec![0, 4, 7, 10]);
        assert_eq!(split_boundaries(9, 3), vec![0, 3, 6, 9]);
        assert_eq!(split_boundaries(5, 1), vec![0, 5]);
        assert_eq!(split_boundaries(5, 5), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn clamps_oversized_granularity() {
        let g = UniformGrid::new(&shape(&[4, 4]), &[100, 2]).unwrap();
        assert_eq!(g.cells(0), 4, "granularity clamps to dimension size");
        assert_eq!(g.cells(1), 2);
    }

    #[test]
    fn clamps_zero_granularity() {
        let g = UniformGrid::new(&shape(&[4]), &[0]).unwrap();
        assert_eq!(g.cells(0), 1);
        assert_eq!(g.num_partitions(), 1);
    }

    #[test]
    fn rejects_dim_mismatch() {
        assert!(UniformGrid::new(&shape(&[4, 4]), &[2]).is_err());
    }

    #[test]
    fn boxes_tile_domain() {
        let s = shape(&[7, 5, 3]);
        let g = UniformGrid::new(&s, &[3, 2, 3]).unwrap();
        let boxes: Vec<AxisBox> = g.iter_boxes().collect();
        assert_eq!(boxes.len(), g.num_partitions());
        let total: usize = boxes.iter().map(AxisBox::volume).sum();
        assert_eq!(total, s.size());
        // Pairwise disjoint.
        for i in 0..boxes.len() {
            for j in i + 1..boxes.len() {
                assert_eq!(boxes[i].overlap_volume(&boxes[j]), 0);
            }
        }
    }

    #[test]
    fn locate_finds_containing_interval() {
        let g = UniformGrid::new(&shape(&[10]), &[3]).unwrap();
        // boundaries [0,4,7,10]
        assert_eq!(g.locate(0, 0), 0);
        assert_eq!(g.locate(0, 3), 0);
        assert_eq!(g.locate(0, 4), 1);
        assert_eq!(g.locate(0, 6), 1);
        assert_eq!(g.locate(0, 7), 2);
        assert_eq!(g.locate(0, 9), 2);
    }

    #[test]
    fn isotropic_uses_same_m_everywhere() {
        let g = UniformGrid::isotropic(&shape(&[8, 8, 8]), 2);
        assert_eq!(g.num_partitions(), 8);
        for d in 0..3 {
            assert_eq!(g.cells(d), 2);
        }
    }
}
