use crate::UniformGrid;
use dpod_fmatrix::{AxisBox, DenseMatrix, Shape};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a box set failed partition validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A box does not fit inside the domain.
    OutOfDomain {
        /// Index of the offending box.
        index: usize,
    },
    /// Two boxes overlap in at least one cell.
    Overlap {
        /// Indices of the overlapping pair.
        first: usize,
        /// Indices of the overlapping pair.
        second: usize,
    },
    /// The boxes do not cover the whole domain.
    IncompleteCover {
        /// Number of domain cells covered.
        covered: usize,
        /// Number of domain cells expected.
        expected: usize,
    },
    /// A box has a different dimensionality than the domain.
    DimensionMismatch {
        /// Index of the offending box.
        index: usize,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::OutOfDomain { index } => {
                write!(f, "box {index} does not fit the domain")
            }
            ValidationError::Overlap { first, second } => {
                write!(f, "boxes {first} and {second} overlap")
            }
            ValidationError::IncompleteCover { covered, expected } => {
                write!(f, "boxes cover {covered} of {expected} domain cells")
            }
            ValidationError::DimensionMismatch { index } => {
                write!(f, "box {index} has wrong dimensionality")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// A set of disjoint boxes covering a domain — the paper's *partitioning*
/// (§2.2). Sensitivity of the induced count-vector query is 1 because each
/// record falls in exactly one partition; [`Partitioning::validate`] is the
/// executable form of that argument and is asserted for every mechanism in
/// the test suites.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partitioning {
    domain: Shape,
    boxes: Vec<AxisBox>,
}

impl Partitioning {
    /// Wraps boxes without validating (use [`Partitioning::validate`] in
    /// tests or [`Partitioning::new_validated`] when correctness is not
    /// structurally guaranteed).
    pub fn new_unchecked(domain: Shape, boxes: Vec<AxisBox>) -> Self {
        Partitioning { domain, boxes }
    }

    /// Wraps boxes and eagerly validates disjointness and coverage.
    ///
    /// # Errors
    /// The first [`ValidationError`] encountered.
    pub fn new_validated(domain: Shape, boxes: Vec<AxisBox>) -> Result<Self, ValidationError> {
        let p = Partitioning { domain, boxes };
        p.validate()?;
        Ok(p)
    }

    /// The partitioning induced by a [`UniformGrid`] (structurally valid —
    /// no validation pass needed).
    pub fn from_grid(grid: &UniformGrid) -> Self {
        Partitioning {
            domain: grid.shape().clone(),
            boxes: grid.iter_boxes().collect(),
        }
    }

    /// The trivial single-partition partitioning (the UNIFORM baseline).
    pub fn single(domain: Shape) -> Self {
        let full = AxisBox::full(&domain);
        Partitioning {
            domain,
            boxes: vec![full],
        }
    }

    /// The finest partitioning: one box per cell (the IDENTITY baseline).
    /// `O(size)` boxes — intended for small/benchmark domains.
    pub fn per_cell(domain: Shape) -> Self {
        let boxes = domain.iter_coords().map(|c| AxisBox::cell(&c)).collect();
        Partitioning { domain, boxes }
    }

    /// The domain shape.
    #[inline]
    pub fn domain(&self) -> &Shape {
        &self.domain
    }

    /// The partition boxes.
    #[inline]
    pub fn boxes(&self) -> &[AxisBox] {
        &self.boxes
    }

    /// Number of partitions.
    #[inline]
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// `true` when there are no partitions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// Checks that the boxes are pairwise disjoint and exactly cover the
    /// domain.
    ///
    /// Cost: `O(size)` via a coverage bitmap (each cell must be hit exactly
    /// once), which simultaneously proves disjointness and coverage without
    /// the `O(n²)` pairwise test.
    ///
    /// # Errors
    /// The first violation found, as a [`ValidationError`].
    pub fn validate(&self) -> Result<(), ValidationError> {
        let size = self.domain.size();
        let mut hits: DenseMatrix<u32> = DenseMatrix::zeros(self.domain.clone());
        let mut covered = 0usize;
        for (i, b) in self.boxes.iter().enumerate() {
            if b.ndim() != self.domain.ndim() {
                return Err(ValidationError::DimensionMismatch { index: i });
            }
            if !b.fits(&self.domain) {
                return Err(ValidationError::OutOfDomain { index: i });
            }
            for c in b.iter_points() {
                let idx = self.domain.flat_index_unchecked(&c);
                if hits.get_flat(idx) != 0 {
                    // Identify the previous owner for the error message.
                    let first = self
                        .boxes
                        .iter()
                        .position(|other| other.contains(&c))
                        .unwrap_or(0);
                    return Err(ValidationError::Overlap { first, second: i });
                }
                hits.set_flat(idx, 1);
                covered += 1;
            }
        }
        if covered != size {
            return Err(ValidationError::IncompleteCover {
                covered,
                expected: size,
            });
        }
        Ok(())
    }

    /// Index of the partition containing `coords` by linear scan
    /// (`O(n·d)`; tests and small inputs only).
    pub fn find(&self, coords: &[usize]) -> Option<usize> {
        self.boxes.iter().position(|b| b.contains(coords))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(dims: &[usize]) -> Shape {
        Shape::new(dims.to_vec()).unwrap()
    }

    fn bx(lo: &[usize], hi: &[usize]) -> AxisBox {
        AxisBox::new(lo.to_vec(), hi.to_vec()).unwrap()
    }

    #[test]
    fn valid_partition_passes() {
        let p = Partitioning::new_validated(
            shape(&[4, 4]),
            vec![bx(&[0, 0], &[2, 4]), bx(&[2, 0], &[4, 4])],
        );
        assert!(p.is_ok());
    }

    #[test]
    fn overlap_detected() {
        let err = Partitioning::new_validated(
            shape(&[4, 4]),
            vec![bx(&[0, 0], &[3, 4]), bx(&[2, 0], &[4, 4])],
        )
        .unwrap_err();
        assert!(matches!(err, ValidationError::Overlap { .. }));
    }

    #[test]
    fn gap_detected() {
        let err =
            Partitioning::new_validated(shape(&[4, 4]), vec![bx(&[0, 0], &[2, 4])]).unwrap_err();
        assert!(matches!(err, ValidationError::IncompleteCover { .. }));
    }

    #[test]
    fn out_of_domain_detected() {
        let err =
            Partitioning::new_validated(shape(&[4, 4]), vec![bx(&[0, 0], &[4, 5])]).unwrap_err();
        assert!(matches!(err, ValidationError::OutOfDomain { .. }));
    }

    #[test]
    fn dimension_mismatch_detected() {
        let err = Partitioning::new_validated(shape(&[4, 4]), vec![bx(&[0], &[4])]).unwrap_err();
        assert!(matches!(err, ValidationError::DimensionMismatch { .. }));
    }

    #[test]
    fn single_and_per_cell() {
        let s = shape(&[3, 3]);
        assert!(Partitioning::single(s.clone()).validate().is_ok());
        let pc = Partitioning::per_cell(s);
        assert_eq!(pc.len(), 9);
        assert!(pc.validate().is_ok());
    }

    #[test]
    fn grid_partitioning_is_valid() {
        let g = UniformGrid::new(&shape(&[7, 5]), &[3, 2]).unwrap();
        assert!(g.to_partitioning().validate().is_ok());
    }

    #[test]
    fn find_locates_owner() {
        let p = Partitioning::new_unchecked(
            shape(&[4, 4]),
            vec![bx(&[0, 0], &[2, 4]), bx(&[2, 0], &[4, 4])],
        );
        assert_eq!(p.find(&[1, 3]), Some(0));
        assert_eq!(p.find(&[2, 0]), Some(1));
    }
}
