//! # dpod-partition
//!
//! Partition representations for DP frequency-matrix mechanisms:
//!
//! * [`Partitioning`] — a validated set of disjoint [`AxisBox`]es covering a
//!   domain (the output structure of every mechanism in the paper: each box
//!   is published with one noisy count);
//! * [`UniformGrid`] — the `m₁ × … × m_d` equi-width grids used by the
//!   non-adaptive methods (EUG, EBP, MKM; §3);
//! * [`tree`] — the hierarchical partition tree underlying the DAF family
//!   (§4): depth-`i` nodes split dimension `i+1`, maximum height `d + 1`.
//!
//! Everything here is geometry only — no randomness, no privacy budget.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod grid;
mod set;
pub mod tree;

pub use dpod_fmatrix::AxisBox;
pub use grid::UniformGrid;
pub use set::{Partitioning, ValidationError};
