//! The hierarchical partition tree underlying the DAF family (§4.1).
//!
//! Each node covers a box of the frequency matrix; children are produced by
//! a disjoint split of the parent's box along a single dimension (nodes at
//! depth `i` split dimension `i`, 0-based; the index height is at most
//! `d + 1`). The tree is generic over a payload so the mechanisms can hang
//! counts, noisy counts and budget bookkeeping on nodes while this crate
//! owns the geometry invariants.

use crate::Partitioning;
use dpod_fmatrix::{AxisBox, Shape};

/// A node of a hierarchical partitioning.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeNode<T> {
    /// The box of the frequency matrix this node covers.
    pub bounds: AxisBox,
    /// Depth in the tree (root = 0).
    pub depth: usize,
    /// Mechanism-specific payload (counts, budgets, …).
    pub payload: T,
    /// Child nodes; empty for leaves.
    pub children: Vec<TreeNode<T>>,
}

impl<T> TreeNode<T> {
    /// A leaf covering `bounds` at `depth`.
    pub fn leaf(bounds: AxisBox, depth: usize, payload: T) -> Self {
        TreeNode {
            bounds,
            depth,
            payload,
            children: Vec::new(),
        }
    }

    /// A root node covering the whole domain.
    pub fn root(domain: &Shape, payload: T) -> Self {
        TreeNode::leaf(AxisBox::full(domain), 0, payload)
    }

    /// `true` when the node has no children.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Total number of nodes in the subtree (including `self`).
    pub fn num_nodes(&self) -> usize {
        1 + self.children.iter().map(TreeNode::num_nodes).sum::<usize>()
    }

    /// Number of leaves in the subtree.
    pub fn num_leaves(&self) -> usize {
        if self.is_leaf() {
            1
        } else {
            self.children.iter().map(TreeNode::num_leaves).sum()
        }
    }

    /// Maximum depth reached in the subtree.
    pub fn max_depth(&self) -> usize {
        self.children
            .iter()
            .map(TreeNode::max_depth)
            .max()
            .unwrap_or(self.depth)
    }

    /// Pre-order visit of every node.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a TreeNode<T>)) {
        f(self);
        for c in &self.children {
            c.visit(f);
        }
    }

    /// Collects references to all leaves in pre-order.
    pub fn leaves(&self) -> Vec<&TreeNode<T>> {
        let mut out = Vec::new();
        self.visit(&mut |n| {
            if n.is_leaf() {
                out.push(n);
            }
        });
        out
    }

    /// The partitioning induced by the leaf boxes over `domain`.
    ///
    /// Valid whenever the split invariant holds (checked by
    /// [`TreeNode::check_split_invariant`] / asserted in mechanism tests).
    pub fn leaf_partitioning(&self, domain: Shape) -> Partitioning {
        let boxes = self
            .leaves()
            .into_iter()
            .map(|n| n.bounds.clone())
            .collect();
        Partitioning::new_unchecked(domain, boxes)
    }

    /// Verifies structurally that every internal node's children are
    /// disjoint, lie inside the parent and cover its volume exactly, and
    /// that child depths are `parent.depth + 1`.
    ///
    /// # Errors
    /// A human-readable description of the first violation.
    pub fn check_split_invariant(&self) -> Result<(), String> {
        if self.is_leaf() {
            return Ok(());
        }
        let mut vol = 0usize;
        for (i, c) in self.children.iter().enumerate() {
            if c.depth != self.depth + 1 {
                return Err(format!(
                    "child {i} at depth {} under parent depth {}",
                    c.depth, self.depth
                ));
            }
            if !self.bounds.contains_box(&c.bounds) {
                return Err(format!("child {i} escapes parent bounds"));
            }
            vol += c.bounds.volume();
            for (j, other) in self.children.iter().enumerate().skip(i + 1) {
                if c.bounds.overlap_volume(&other.bounds) > 0 {
                    return Err(format!("children {i} and {j} overlap"));
                }
            }
        }
        if vol != self.bounds.volume() {
            return Err(format!(
                "children cover {vol} cells of parent's {}",
                self.bounds.volume()
            ));
        }
        for c in &self.children {
            c.check_split_invariant()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(dims: &[usize]) -> Shape {
        Shape::new(dims.to_vec()).unwrap()
    }

    fn bx(lo: &[usize], hi: &[usize]) -> AxisBox {
        AxisBox::new(lo.to_vec(), hi.to_vec()).unwrap()
    }

    fn sample_tree() -> TreeNode<u32> {
        // Root splits dim 0 into [0,2) and [2,4); left child splits dim 1.
        let mut root = TreeNode::root(&shape(&[4, 4]), 0u32);
        let mut left = TreeNode::leaf(bx(&[0, 0], &[2, 4]), 1, 1);
        left.children = vec![
            TreeNode::leaf(bx(&[0, 0], &[2, 2]), 2, 3),
            TreeNode::leaf(bx(&[0, 2], &[2, 4]), 2, 4),
        ];
        let right = TreeNode::leaf(bx(&[2, 0], &[4, 4]), 1, 2);
        root.children = vec![left, right];
        root
    }

    #[test]
    fn counts_and_depth() {
        let t = sample_tree();
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.num_leaves(), 3);
        assert_eq!(t.max_depth(), 2);
        assert!(!t.is_leaf());
    }

    #[test]
    fn leaves_in_preorder() {
        let t = sample_tree();
        let payloads: Vec<u32> = t.leaves().iter().map(|n| n.payload).collect();
        assert_eq!(payloads, vec![3, 4, 2]);
    }

    #[test]
    fn leaf_partitioning_is_valid() {
        let t = sample_tree();
        let p = t.leaf_partitioning(shape(&[4, 4]));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn split_invariant_holds_for_sample() {
        assert!(sample_tree().check_split_invariant().is_ok());
    }

    #[test]
    fn split_invariant_catches_overlap() {
        let mut root = TreeNode::root(&shape(&[4, 4]), ());
        root.children = vec![
            TreeNode::leaf(bx(&[0, 0], &[3, 4]), 1, ()),
            TreeNode::leaf(bx(&[2, 0], &[4, 4]), 1, ()),
        ];
        let err = root.check_split_invariant().unwrap_err();
        assert!(err.contains("overlap"), "{err}");
    }

    #[test]
    fn split_invariant_catches_gap() {
        let mut root = TreeNode::root(&shape(&[4, 4]), ());
        root.children = vec![TreeNode::leaf(bx(&[0, 0], &[2, 4]), 1, ())];
        let err = root.check_split_invariant().unwrap_err();
        assert!(err.contains("cover"), "{err}");
    }

    #[test]
    fn split_invariant_catches_bad_depth() {
        let mut root = TreeNode::root(&shape(&[2, 2]), ());
        root.children = vec![
            TreeNode::leaf(bx(&[0, 0], &[1, 2]), 5, ()),
            TreeNode::leaf(bx(&[1, 0], &[2, 2]), 1, ()),
        ];
        assert!(root.check_split_invariant().is_err());
    }

    #[test]
    fn visit_preorder_order() {
        let t = sample_tree();
        let mut order = Vec::new();
        t.visit(&mut |n| order.push(n.payload));
        assert_eq!(order, vec![0, 1, 3, 4, 2]);
    }
}
