//! Property-based tests for grids, partition sets and trees.

use dpod_fmatrix::{AxisBox, Shape};
use dpod_partition::{tree::TreeNode, Partitioning, UniformGrid};
use proptest::prelude::*;

fn arb_shape() -> impl Strategy<Value = Shape> {
    prop::collection::vec(1usize..=9, 1..=4).prop_map(|d| Shape::new(d).unwrap())
}

proptest! {
    /// Any uniform grid (with any requested granularity, including absurd
    /// ones) yields a valid partitioning of the domain.
    #[test]
    fn grids_always_partition(
        (shape, cells) in arb_shape().prop_flat_map(|s| {
            let d = s.ndim();
            (Just(s), prop::collection::vec(0usize..20, d))
        })
    ) {
        let g = UniformGrid::new(&shape, &cells).unwrap();
        prop_assert!(g.to_partitioning().validate().is_ok());
    }

    /// `locate` inverts the boundary structure: every domain coordinate maps
    /// to the interval that contains it.
    #[test]
    fn locate_is_consistent(
        (shape, m) in arb_shape().prop_flat_map(|s| (Just(s), 1usize..10))
    ) {
        let g = UniformGrid::isotropic(&shape, m);
        for dim in 0..shape.ndim() {
            for c in 0..shape.dim(dim) {
                let i = g.locate(dim, c);
                let b = g.boundaries(dim);
                prop_assert!(b[i] <= c && c < b[i + 1]);
            }
        }
    }

    /// Recursively splitting a root box along successive dimensions always
    /// maintains the split invariant and produces a valid leaf partitioning.
    #[test]
    fn random_axis_splits_keep_invariant(
        (shape, cut_fracs) in arb_shape().prop_flat_map(|s| {
            let d = s.ndim();
            (Just(s), prop::collection::vec(0.0f64..1.0, d))
        })
    ) {
        fn grow(node: &mut TreeNode<()>, fracs: &[f64], d: usize) {
            if node.depth >= d {
                return;
            }
            let dim = node.depth;
            let extent = node.bounds.extent(dim);
            if extent < 2 {
                return;
            }
            let at = node.bounds.lo()[dim]
                + 1
                + ((extent - 1) as f64 * fracs[dim]) as usize;
            let at = at.min(node.bounds.hi()[dim] - 1);
            let (l, r) = node.bounds.split_at(dim, at).unwrap();
            node.children = vec![
                TreeNode::leaf(l, node.depth + 1, ()),
                TreeNode::leaf(r, node.depth + 1, ()),
            ];
            for c in &mut node.children {
                grow(c, fracs, d);
            }
        }
        let d = shape.ndim();
        let mut root = TreeNode::root(&shape, ());
        grow(&mut root, &cut_fracs, d);
        prop_assert!(root.check_split_invariant().is_ok());
        prop_assert!(root.leaf_partitioning(shape).validate().is_ok());
    }

    /// Validation rejects any partitioning from which one box was removed
    /// (unless it was empty).
    #[test]
    fn validation_detects_missing_box(
        (shape, m, victim) in arb_shape().prop_flat_map(|s| {
            (Just(s), 2usize..5, any::<prop::sample::Index>())
        })
    ) {
        let g = UniformGrid::isotropic(&shape, m);
        let mut boxes: Vec<AxisBox> = g.iter_boxes().collect();
        if boxes.len() < 2 {
            return Ok(());
        }
        let removed = boxes.remove(victim.index(boxes.len()));
        let p = Partitioning::new_unchecked(shape, boxes);
        if removed.volume() > 0 {
            prop_assert!(p.validate().is_err());
        }
    }
}
